#include "models/gan.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/generators/paper_datasets.h"

namespace silofuse {
namespace {

std::vector<FeatureSpan> MixedSpans() {
  // numeric @0, categorical(3) @1..3, numeric @4.
  FeatureSpan num0{0, 0, 1, false};
  FeatureSpan cat{1, 1, 3, true};
  FeatureSpan num1{2, 4, 1, false};
  return {num0, cat, num1};
}

TEST(TabularActivationTest, NumericSlotsAreTanh) {
  TabularActivation act(MixedSpans());
  Matrix x = Matrix::FromVector(1, 5, {2.0f, 0, 0, 0, -1.5f});
  Matrix y = act.Forward(x, false);
  EXPECT_NEAR(y.at(0, 0), std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(y.at(0, 4), std::tanh(-1.5f), 1e-6);
}

TEST(TabularActivationTest, CategoricalSpanIsSoftmax) {
  TabularActivation act(MixedSpans());
  Matrix x = Matrix::FromVector(1, 5, {0, 1.0f, 2.0f, 3.0f, 0});
  Matrix y = act.Forward(x, false);
  double sum = 0.0;
  for (int k = 1; k <= 3; ++k) {
    EXPECT_GT(y.at(0, k), 0.0f);
    sum += y.at(0, k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_GT(y.at(0, 3), y.at(0, 2));
  EXPECT_GT(y.at(0, 2), y.at(0, 1));
}

TEST(TabularActivationTest, BackwardMatchesFiniteDifference) {
  TabularActivation act(MixedSpans());
  Rng rng(1);
  Matrix x = Matrix::RandomNormal(3, 5, &rng);
  Matrix g = Matrix::RandomNormal(3, 5, &rng);
  act.Forward(x, false);
  Matrix grad = act.Backward(g);
  const double eps = 1e-3;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) {
      const float orig = x.at(r, c);
      x.at(r, c) = orig + static_cast<float>(eps);
      const double up = act.Forward(x, false).Mul(g).Sum();
      x.at(r, c) = orig - static_cast<float>(eps);
      const double down = act.Forward(x, false).Mul(g).Sum();
      x.at(r, c) = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grad.at(r, c), numeric,
                  2e-2 * std::max(1.0, std::abs(numeric)))
          << "(" << r << "," << c << ")";
    }
  }
}

// Both backbones: one alternation runs, losses are finite, generator output
// decodes to a valid table.
class GanBackboneSweep : public ::testing::TestWithParam<GanBackbone> {};

TEST_P(GanBackboneSweep, TrainStepProducesFiniteLosses) {
  Rng rng(2);
  Table data = GeneratePaperDataset("loan", 300, 2).Value();
  GanConfig config;
  config.backbone = GetParam();
  config.hidden_dim = 32;
  config.train_steps = 50;
  config.batch_size = 64;
  GanSynthesizer gan(config);
  ASSERT_TRUE(gan.Fit(data, &rng).ok());
  MixedEncoder encoder(NumericScaling::kMinMax);
  ASSERT_TRUE(encoder.Fit(data).ok());
  Matrix batch = encoder.Encode(data).SliceRows(0, 64);
  auto [d_loss, g_loss] = gan.TrainStep(batch, &rng);
  EXPECT_TRUE(std::isfinite(d_loss));
  EXPECT_TRUE(std::isfinite(g_loss));
  EXPECT_GT(d_loss, 0.0);
  EXPECT_GT(g_loss, 0.0);
}

TEST_P(GanBackboneSweep, SynthesizedNumericsWithinTrainingRange) {
  Rng rng(3);
  Table data = GeneratePaperDataset("loan", 300, 3).Value();
  GanConfig config;
  config.backbone = GetParam();
  config.hidden_dim = 32;
  config.train_steps = 100;
  config.batch_size = 64;
  GanSynthesizer gan(config);
  ASSERT_TRUE(gan.Fit(data, &rng).ok());
  Table synth = gan.Synthesize(200, &rng).Value();
  // Min-max + tanh output cannot escape the observed range.
  for (int c = 0; c < data.num_columns(); ++c) {
    if (data.schema().column(c).is_categorical()) continue;
    const auto& real = data.column_values(c);
    const double lo = *std::min_element(real.begin(), real.end());
    const double hi = *std::max_element(real.begin(), real.end());
    for (double v : synth.column_values(c)) {
      EXPECT_GE(v, lo - 1e-6);
      EXPECT_LE(v, hi + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backbones, GanBackboneSweep,
                         ::testing::Values(GanBackbone::kLinear,
                                           GanBackbone::kConv));

TEST(GanTest, NameReflectsBackbone) {
  GanConfig linear;
  GanConfig conv;
  conv.backbone = GanBackbone::kConv;
  EXPECT_EQ(GanSynthesizer(linear).name(), "GAN(linear)");
  EXPECT_EQ(GanSynthesizer(conv).name(), "GAN(conv)");
}

TEST(GanTest, FitRejectsTinyTables) {
  GanConfig config;
  GanSynthesizer gan(config);
  Rng rng(4);
  Table one(Schema({ColumnSpec::Numeric("x")}));
  ASSERT_TRUE(one.AppendRow({1.0}).ok());
  EXPECT_FALSE(gan.Fit(one, &rng).ok());
}

}  // namespace
}  // namespace silofuse

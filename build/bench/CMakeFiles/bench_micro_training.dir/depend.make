# Empty dependencies file for bench_micro_training.
# This may be replaced when dependencies are built.

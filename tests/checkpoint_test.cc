// Serialization tests: the binary archive primitives, matrix round-trips,
// component Save/Load, and full SiloFuse checkpoint restore (synthesis from
// a reloaded model must be schema-correct and deterministic given a seed).

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/archive.h"
#include "core/silofuse.h"
#include "data/generators/paper_datasets.h"
#include "diffusion/gaussian_ddpm.h"
#include "models/autoencoder.h"
#include "tensor/matrix_io.h"

namespace silofuse {
namespace {

TEST(ArchiveTest, PrimitiveRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(42);
  writer.WriteI64(-7);
  writer.WriteF32(1.5f);
  writer.WriteF64(-2.25);
  writer.WriteBool(true);
  writer.WriteString("hello");
  writer.WriteDoubleVector({1.0, 2.0});
  BinaryReader reader(&stream);
  EXPECT_EQ(reader.ReadU32().Value(), 42u);
  EXPECT_EQ(reader.ReadI64().Value(), -7);
  EXPECT_EQ(reader.ReadF32().Value(), 1.5f);
  EXPECT_EQ(reader.ReadF64().Value(), -2.25);
  EXPECT_EQ(reader.ReadBool().Value(), true);
  EXPECT_EQ(reader.ReadString().Value(), "hello");
  EXPECT_EQ(reader.ReadDoubleVector().Value(), (std::vector<double>{1.0, 2.0}));
}

TEST(ArchiveTest, TruncatedStreamIsIOError) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(1);
  BinaryReader reader(&stream);
  ASSERT_TRUE(reader.ReadU32().ok());
  EXPECT_EQ(reader.ReadU32().status().code(), StatusCode::kIOError);
}

TEST(ArchiveTest, TagMismatchDetected) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteString("alpha");
  BinaryReader reader(&stream);
  EXPECT_FALSE(reader.ExpectTag("beta").ok());
}

TEST(ArchiveTest, CorruptLengthRejected) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU64(kMaxArchiveVectorLength + 1);  // absurd string length
  BinaryReader reader(&stream);
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST(MatrixIoTest, RoundTripExact) {
  Rng rng(1);
  Matrix m = Matrix::RandomNormal(7, 5, &rng);
  std::stringstream stream;
  BinaryWriter writer(&stream);
  SaveMatrix(&writer, m);
  BinaryReader reader(&stream);
  auto back = LoadMatrix(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.Value(), m);
}

TEST(MatrixIoTest, EmptyMatrixRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  SaveMatrix(&writer, Matrix());
  BinaryReader reader(&stream);
  auto back = LoadMatrix(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.Value().empty());
}

TEST(SchemaIoTest, RoundTrip) {
  Schema schema({ColumnSpec::Numeric("x"), ColumnSpec::Categorical("c", 9)});
  std::stringstream stream;
  BinaryWriter writer(&stream);
  schema.Save(&writer);
  BinaryReader reader(&stream);
  auto back = Schema::Load(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.Value() == schema);
}

TEST(MixedEncoderIoTest, RestoredEncoderEncodesIdentically) {
  Table data = GeneratePaperDataset("loan", 200, 1).Value();
  MixedEncoder original(NumericScaling::kQuantileNormal);
  ASSERT_TRUE(original.Fit(data).ok());
  std::stringstream stream;
  BinaryWriter writer(&stream);
  original.Save(&writer);
  BinaryReader reader(&stream);
  MixedEncoder restored;
  ASSERT_TRUE(restored.Load(&reader).ok());
  EXPECT_EQ(restored.encoded_width(), original.encoded_width());
  EXPECT_EQ(restored.scaling(), NumericScaling::kQuantileNormal);
  EXPECT_EQ(restored.Encode(data), original.Encode(data));
}

TEST(AutoencoderIoTest, RestoredAutoencoderMatchesOriginal) {
  Rng rng(2);
  Table data = GeneratePaperDataset("loan", 300, 2).Value();
  AutoencoderConfig config;
  config.hidden_dim = 32;
  auto ae = TabularAutoencoder::Create(data, config, &rng).Value();
  ASSERT_TRUE(ae->Train(data, 150, 64, &rng).ok());
  std::stringstream stream;
  BinaryWriter writer(&stream);
  ae->Save(&writer);
  BinaryReader reader(&stream);
  auto restored = TabularAutoencoder::LoadFrom(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.Value()->latent_dim(), ae->latent_dim());
  // Encodings are bit-identical.
  EXPECT_EQ(restored.Value()->EncodeTable(data), ae->EncodeTable(data));
}

TEST(GaussianDdpmIoTest, RestoredModelSamplesIdentically) {
  Rng rng(3);
  GaussianDdpmConfig config;
  config.data_dim = 4;
  config.hidden_dim = 32;
  config.num_layers = 4;
  config.dropout = 0.0f;
  GaussianDdpm ddpm(config, &rng);
  Matrix z0 = Matrix::RandomNormal(128, 4, &rng);
  for (int s = 0; s < 50; ++s) ddpm.TrainStep(z0, &rng);
  std::stringstream stream;
  BinaryWriter writer(&stream);
  ddpm.Save(&writer);
  BinaryReader reader(&stream);
  auto restored = GaussianDdpm::LoadFrom(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Rng rng_a(9), rng_b(9);
  EXPECT_EQ(ddpm.Sample(10, 5, &rng_a, 0.0),
            restored.Value()->Sample(10, 5, &rng_b, 0.0));
}

class SiloFuseCheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/silofuse.ckpt";
};

TEST_F(SiloFuseCheckpointTest, SaveLoadSynthesizeRoundTrip) {
  Table data = GeneratePaperDataset("loan", 300, 3).Value();
  SiloFuseOptions options;
  options.base.autoencoder.hidden_dim = 32;
  options.base.autoencoder_steps = 80;
  options.base.diffusion_train_steps = 120;
  options.base.batch_size = 64;
  options.base.diffusion.hidden_dim = 32;
  options.base.diffusion.num_layers = 3;
  options.partition.num_clients = 3;
  SiloFuse model(options);
  Rng rng(4);
  ASSERT_TRUE(model.Fit(data, &rng).ok());
  ASSERT_TRUE(model.SaveCheckpoint(path_).ok());

  auto restored = SiloFuse::LoadCheckpoint(path_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.Value()->num_clients(), 3);
  EXPECT_EQ(restored.Value()->total_latent_dim(), model.total_latent_dim());

  // Same seed -> identical synthetic output from original and restored.
  Rng rng_a(11), rng_b(11);
  auto synth_a = model.Synthesize(40, &rng_a);
  auto synth_b = restored.Value()->Synthesize(40, &rng_b);
  ASSERT_TRUE(synth_a.ok());
  ASSERT_TRUE(synth_b.ok());
  EXPECT_TRUE(synth_a.Value().schema() == data.schema());
  EXPECT_TRUE(synth_b.Value().schema() == data.schema());
  for (int r = 0; r < 40; ++r) {
    for (int c = 0; c < data.num_columns(); ++c) {
      EXPECT_DOUBLE_EQ(synth_a.Value().value(r, c),
                       synth_b.Value().value(r, c));
    }
  }
}

// Serving restores checkpoints from concurrent request paths (model-cache
// misses on two deployments backed by one file, tests, tools); restore must
// be safe to run in parallel and each restored model fully independent.
// Runs under the TSan CI job.
TEST_F(SiloFuseCheckpointTest, ConcurrentRestoreIsIndependent) {
  Table data = GeneratePaperDataset("loan", 200, 7).Value();
  SiloFuseOptions options;
  options.base.autoencoder.hidden_dim = 32;
  options.base.autoencoder_steps = 40;
  options.base.diffusion_train_steps = 60;
  options.base.batch_size = 64;
  options.base.diffusion.hidden_dim = 32;
  options.base.diffusion.num_layers = 3;
  options.partition.num_clients = 2;
  SiloFuse model(options);
  Rng rng(8);
  ASSERT_TRUE(model.Fit(data, &rng).ok());
  ASSERT_TRUE(model.SaveCheckpoint(path_).ok());

  constexpr int kThreads = 2;
  std::vector<Result<Table>> outputs(kThreads, Status::Internal("unset"));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &outputs] {
      auto restored = SiloFuse::LoadCheckpoint(path_);
      if (!restored.ok()) {
        outputs[t] = restored.status();
        return;
      }
      Rng synth_rng(21);  // same seed in both threads
      outputs[t] = restored.Value()->Synthesize(30, &synth_rng);
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(outputs[t].ok()) << outputs[t].status().ToString();
    EXPECT_TRUE(outputs[t].Value().schema() == data.schema());
  }
  // Same file + same seed -> byte-identical tables from both threads.
  const Table& a = outputs[0].Value();
  const Table& b = outputs[1].Value();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.value(r, c), b.value(r, c));
    }
  }
}

TEST_F(SiloFuseCheckpointTest, UnfittedModelCannotBeSaved) {
  SiloFuse model;
  EXPECT_EQ(model.SaveCheckpoint(path_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SiloFuseCheckpointTest, MissingFileFailsToLoad) {
  auto restored = SiloFuse::LoadCheckpoint("/nonexistent/model.ckpt");
  EXPECT_EQ(restored.status().code(), StatusCode::kIOError);
}

TEST_F(SiloFuseCheckpointTest, CorruptFileFailsToLoad) {
  std::ofstream out(path_, std::ios::binary);
  out << "garbage data, not a checkpoint";
  out.close();
  auto restored = SiloFuse::LoadCheckpoint(path_);
  EXPECT_FALSE(restored.ok());
}

}  // namespace
}  // namespace silofuse

#ifndef SILOFUSE_MODELS_GAN_H_
#define SILOFUSE_MODELS_GAN_H_

#include <memory>
#include <vector>

#include "data/mixed_encoder.h"
#include "models/synthesizer.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace silofuse {

/// Generator/discriminator backbone flavor (Section V-A baselines):
/// kLinear ~ CTGAN, kConv ~ CTAB-GAN's convolutional architecture mapped to
/// 1-D convolutions over the feature axis.
enum class GanBackbone { kLinear, kConv };

struct GanConfig {
  GanBackbone backbone = GanBackbone::kLinear;
  int noise_dim = 64;
  int hidden_dim = 128;
  int num_layers = 4;  // paper: "four convolutional or linear layers"
  float lr = 1e-3f;
  float leaky_slope = 0.2f;
  float grad_clip = 5.0f;
  int train_steps = 1200;  // generator+discriminator alternations
  int batch_size = 256;
};

/// Span-aware output head: tanh on numeric slots, softmax within each
/// categorical one-hot span. Keeps the generator's categorical output a
/// valid probability vector the discriminator (and decoder) can consume.
class TabularActivation : public Module {
 public:
  explicit TabularActivation(std::vector<FeatureSpan> spans)
      : spans_(std::move(spans)) {}

  const char* TypeName() const override { return "tabular_activation"; }

  Matrix Forward(const Matrix& input, bool training) override;
  Matrix Backward(const Matrix& grad_output) override;

 private:
  std::vector<FeatureSpan> spans_;
  Matrix cached_output_;
};

/// GAN tabular synthesizer: non-saturating BCE objective, LeakyReLU +
/// LayerNorm blocks, one-hot + minmax feature space.
class GanSynthesizer : public Synthesizer {
 public:
  explicit GanSynthesizer(GanConfig config = {}) : config_(std::move(config)) {}

  Status Fit(const Table& data, Rng* rng) override;
  Result<Table> Synthesize(int num_rows, Rng* rng) override;
  std::string name() const override {
    return config_.backbone == GanBackbone::kLinear ? "GAN(linear)"
                                                    : "GAN(conv)";
  }

  /// One alternation (discriminator step + generator step); returns
  /// (d_loss, g_loss). Exposed for tests.
  std::pair<double, double> TrainStep(const Matrix& real_batch, Rng* rng);

  const GanConfig& config() const { return config_; }

 private:
  void BuildNetworks(int width, Rng* rng);

  GanConfig config_;
  MixedEncoder encoder_{NumericScaling::kMinMax};
  Sequential generator_;
  Sequential discriminator_;
  std::unique_ptr<Adam> g_optimizer_;
  std::unique_ptr<Adam> d_optimizer_;
  bool fitted_ = false;
};

}  // namespace silofuse

#endif  // SILOFUSE_MODELS_GAN_H_

#ifndef SILOFUSE_NN_RESIDUAL_H_
#define SILOFUSE_NN_RESIDUAL_H_

#include <memory>
#include <utility>

#include "nn/module.h"

namespace silofuse {

/// Residual wrapper: y = x + inner(x). Input and output widths of `inner`
/// must match. Residual paths keep deep denoising backbones trainable at
/// small step budgets (a plain MLP stack struggles to even represent the
/// near-identity maps diffusion needs at high noise levels).
class Residual : public Module {
 public:
  explicit Residual(std::unique_ptr<Module> inner)
      : inner_(std::move(inner)) {
    SF_CHECK(inner_ != nullptr);
  }

  const char* TypeName() const override { return "residual"; }

  Matrix Forward(const Matrix& input, bool training) override {
    Matrix out = inner_->Forward(input, training);
    out.AddInPlace(input);
    return out;
  }

  Matrix Backward(const Matrix& grad_output) override {
    Matrix grad = inner_->Backward(grad_output);
    grad.AddInPlace(grad_output);
    return grad;
  }

  std::vector<Parameter*> Parameters() override {
    return inner_->Parameters();
  }

 private:
  std::unique_ptr<Module> inner_;
};

}  // namespace silofuse

#endif  // SILOFUSE_NN_RESIDUAL_H_

# Empty compiler generated dependencies file for communication_audit.
# This may be replaced when dependencies are built.

#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace silofuse {
namespace serve {

namespace {

struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* rows;
  obs::Counter* errors;
  obs::Histogram* latency_ms;
  obs::Histogram* sample_ms;
  obs::Histogram* decode_ms;
  obs::Histogram* stream_ms;
  obs::Histogram* cache_load_ms;
};

const ServerMetrics& Metrics() {
  static const ServerMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    ServerMetrics m;
    m.requests = registry.GetCounter("serve.requests");
    m.rows = registry.GetCounter("serve.rows");
    m.errors = registry.GetCounter("serve.errors");
    m.latency_ms = registry.GetHistogram(
        "serve.request_latency_ms",
        {0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000});
    m.sample_ms =
        registry.GetHistogram("serve.sample_ms", ServePhaseBoundsMs());
    m.decode_ms =
        registry.GetHistogram("serve.decode_ms", ServePhaseBoundsMs());
    m.stream_ms =
        registry.GetHistogram("serve.stream_ms", ServePhaseBoundsMs());
    m.cache_load_ms =
        registry.GetHistogram("serve.cache_load_ms", ServePhaseBoundsMs());
    return m;
  }();
  return metrics;
}

struct DeployServeMetrics {
  obs::Histogram* latency_ms;
  obs::Histogram* sample_ms;
  obs::Histogram* decode_ms;
  obs::Histogram* stream_ms;
};

/// Per-deployment copies of the request-path histograms, cached by interned
/// deployment pointer (same scheme as the batcher's queue/linger cache).
const DeployServeMetrics* DeployMetricsFor(const char* deployment) {
  if (deployment == nullptr) return nullptr;
  static std::mutex mu;
  static auto* cache = new std::map<const char*, DeployServeMetrics>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(deployment);
  if (it == cache->end()) {
    auto& registry = obs::MetricsRegistry::Global();
    const std::string prefix = std::string("serve.deploy.") + deployment;
    DeployServeMetrics m;
    m.latency_ms = registry.GetHistogram(
        prefix + ".request_latency_ms",
        {0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000});
    m.sample_ms =
        registry.GetHistogram(prefix + ".sample_ms", ServePhaseBoundsMs());
    m.decode_ms =
        registry.GetHistogram(prefix + ".decode_ms", ServePhaseBoundsMs());
    m.stream_ms =
        registry.GetHistogram(prefix + ".stream_ms", ServePhaseBoundsMs());
    it = cache->emplace(deployment, m).first;
  }
  return &it->second;
}

}  // namespace

SynthesisServer::SynthesisServer(ServeOptions options)
    : options_(options), cache_(options.cache) {
  if (options_.stream_chunk_rows < 1) options_.stream_chunk_rows = 1;
  if (options_.max_rows_per_request < 1) options_.max_rows_per_request = 1;
  if (!options_.flight_dump_dir.empty()) {
    obs::FlightRecorder::Global().SetDumpDir(options_.flight_dump_dir);
  }
  if (options_.enable_slo) {
    slo_ = std::make_unique<obs::SloMonitor>(options_.slo, options_.slo_clock,
                                             "serve.slo");
    slo_->SetOnBreach([](const std::string& reason) {
      auto& flight = obs::FlightRecorder::Global();
      const int64_t now_ns = obs::TraceNowNs();
      flight.Record(obs::FlightPhase::kBreach, /*request_id=*/0,
                    /*batch_id=*/0, /*deployment=*/nullptr, /*rows=*/0,
                    now_ns, now_ns);
      // The whole point of the always-on recorder: the events leading up
      // to this breach are already in memory — snapshot them now.
      flight.DumpOnTrigger("slo_breach");
      static_cast<void>(reason);
    });
  }
}

Status SynthesisServer::RegisterDeployment(const std::string& name,
                                           const std::string& checkpoint_path) {
  return cache_.Register(name, checkpoint_path);
}

int SynthesisServer::ActiveBatchers() const {
  std::lock_guard<std::mutex> lock(batchers_mu_);
  return static_cast<int>(batchers_.size());
}

ServerDebugSnapshot SynthesisServer::DebugSnapshot() {
  ServerDebugSnapshot snapshot;
  for (const std::string& name : cache_.Deployments()) {
    ServerDebugSnapshot::Deployment deployment;
    deployment.name = name;
    {
      std::lock_guard<std::mutex> lock(batchers_mu_);
      auto it = batchers_.find(name);
      if (it != batchers_.end()) deployment.queue_depth = it->second->QueueDepth();
    }
    snapshot.deployments.push_back(std::move(deployment));
  }
  snapshot.loaded_models = cache_.LoadedCount();
  snapshot.active_batchers = ActiveBatchers();
  snapshot.slo_enabled = slo_ != nullptr;
  if (slo_ != nullptr) snapshot.slo = slo_->Snapshot();
  auto& flight = obs::FlightRecorder::Global();
  snapshot.recent_flight_dumps = flight.RecentDumps();
  snapshot.flight_events = flight.TotalRecorded();
  return snapshot;
}

RequestBatcher* SynthesisServer::BatcherFor(const std::string& deployment) {
  std::lock_guard<std::mutex> lock(batchers_mu_);
  auto it = batchers_.find(deployment);
  if (it == batchers_.end()) {
    auto batcher = std::make_unique<RequestBatcher>(
        options_.batcher,
        [this, deployment](const std::vector<RequestBatcher::Request>& batch,
                           const SamplingParams& params) {
          return RunBatch(deployment, batch, params);
        });
    it = batchers_.emplace(deployment, std::move(batcher)).first;
  }
  return it->second.get();
}

Result<std::vector<Table>> SynthesisServer::RunBatch(
    const std::string& deployment,
    const std::vector<RequestBatcher::Request>& batch,
    const SamplingParams& params) {
  // The batcher installed the batch-scoped context (round = batch id, tag =
  // deployment) before calling in; spans and flight events key off it.
  const uint64_t batch_id =
      static_cast<uint64_t>(obs::CurrentTraceContext().round);
  const char* deployment_tag = obs::InternTraceString(deployment);
  const ServerMetrics& metrics = Metrics();
  const DeployServeMetrics* deploy = DeployMetricsFor(deployment_tag);
  auto& flight = obs::FlightRecorder::Global();
  obs::ContextSpan batch_span("serve.batch");
  int batch_rows = 0;
  for (const RequestBatcher::Request& request : batch) {
    batch_rows += request.rows;
  }

  const int64_t batch_start_ns = obs::TraceNowNs();
  std::shared_ptr<SiloFuse> model;
  {
    obs::ContextSpan cache_span("serve.cache_load");
    SF_ASSIGN_OR_RETURN(model, cache_.Get(deployment));
  }
  const int64_t cache_done_ns = obs::TraceNowNs();
  metrics.cache_load_ms->Observe(
      static_cast<double>(cache_done_ns - batch_start_ns) / 1e6);
  flight.Record(obs::FlightPhase::kCacheLoad, /*request_id=*/0, batch_id,
                deployment_tag, batch_rows, batch_start_ns, cache_done_ns);

  // One private noise stream per request: output i is byte-identical to a
  // solo request with the same seed regardless of batch composition.
  std::deque<Rng> rngs;
  std::vector<CoalescedRequest> coalesced;
  coalesced.reserve(batch.size());
  for (const RequestBatcher::Request& request : batch) {
    rngs.emplace_back(request.seed);
    coalesced.push_back({request.rows, &rngs.back()});
  }
  CoalescedTiming timing;
  Result<std::vector<Table>> result =
      model->SynthesizeCoalesced(coalesced, params, &timing);
  const int64_t done_ns = obs::TraceNowNs();
  if (!result.ok()) return result;

  // Phase accounting: the sample segment runs from dispatch to the end of
  // the shared denoising pass — deliberately including the cache fetch and
  // latent prep, so queue+linger+sample+decode(+stream) tiles the request's
  // latency with no unattributed gap (serve.cache_load_ms above is the
  // finer-grained detail view). Every batch member observes the shared
  // durations: each request really did wait for the whole pass.
  const int64_t sample_end_ns =
      timing.sample_end_ns > 0 ? timing.sample_end_ns : done_ns;
  const double sample_ms =
      static_cast<double>(sample_end_ns - batch_start_ns) / 1e6;
  const double decode_ms = static_cast<double>(done_ns - sample_end_ns) / 1e6;
  for (const RequestBatcher::Request& request : batch) {
    metrics.sample_ms->Observe(sample_ms);
    metrics.decode_ms->Observe(decode_ms);
    if (deploy != nullptr) {
      deploy->sample_ms->Observe(sample_ms);
      deploy->decode_ms->Observe(decode_ms);
    }
    flight.Record(obs::FlightPhase::kSample, request.request_id, batch_id,
                  deployment_tag, request.rows, batch_start_ns, sample_end_ns);
    flight.Record(obs::FlightPhase::kDecode, request.request_id, batch_id,
                  deployment_tag, request.rows, sample_end_ns, done_ns);
  }
  return result;
}

Result<Table> SynthesisServer::SynthesizeInternal(const ServeRequest& request,
                                                  const RowChunkSink* sink) {
  const ServerMetrics& metrics = Metrics();
  metrics.requests->Increment();
  if (request.rows <= 0) {
    return Status::InvalidArgument("request rows must be positive");
  }
  if (request.rows > options_.max_rows_per_request) {
    return Status::InvalidArgument(
        "request rows " + std::to_string(request.rows) +
        " exceed max_rows_per_request " +
        std::to_string(options_.max_rows_per_request));
  }
  // Admission happens BEFORE BatcherFor: a batcher costs a worker thread
  // and a permanent map entry, so a stream of unknown (typo'd or hostile)
  // deployment names must bounce here instead of minting one per name.
  if (!cache_.Registered(request.deployment)) {
    return Status::NotFound("deployment '" + request.deployment +
                            "' is not registered");
  }
  // Resolve the schedule up front: batches may only merge requests with
  // identical params, and sentinels resolve to the SERVING defaults here
  // (25-step DDIM), not to the checkpoint's training schedule.
  RequestBatcher::Request order;
  order.rows = request.rows;
  order.seed = request.seed;
  order.params.steps = request.params.steps > 0 ? request.params.steps
                                                : options_.defaults.steps;
  order.params.eta =
      request.params.eta >= 0.0 ? request.params.eta : options_.defaults.eta;
  order.request_id = obs::NextTraceRunId();
  order.deployment = obs::InternTraceString(request.deployment);
  const DeployServeMetrics* deploy = DeployMetricsFor(order.deployment);

  // Request-scoped ambient context on the caller thread; the batcher hands
  // an equivalent context (plus batch id) to the worker side, so both
  // halves of the request share run/tag identity in the exported trace.
  obs::TraceContext request_ctx;
  request_ctx.run_id = static_cast<uint32_t>(order.request_id);
  request_ctx.tag = order.deployment;
  obs::ScopedTraceContext request_scope(request_ctx);
  obs::ContextSpan request_span("serve.request");

  auto& flight = obs::FlightRecorder::Global();
  const int64_t start_ns = obs::TraceNowNs();
  Result<Table> result = BatcherFor(request.deployment)->Submit(order);
  Status stream_status = Status::OK();
  if (result.ok() && sink != nullptr) {
    obs::ContextSpan stream_span("serve.stream");
    const int64_t stream_start_ns = obs::TraceNowNs();
    const Table& table = result.Value();
    // Chunking applies to DELIVERY only: the decode itself must be whole-
    // request (the decoder consumes its rng span-major, so decoding row
    // chunks independently would change the bytes).
    for (int start = 0; start < table.num_rows();
         start += options_.stream_chunk_rows) {
      const int count =
          std::min(options_.stream_chunk_rows, table.num_rows() - start);
      stream_status = (*sink)(table.SliceRows(start, count));
      if (!stream_status.ok()) break;
    }
    const int64_t stream_end_ns = obs::TraceNowNs();
    const double stream_ms =
        static_cast<double>(stream_end_ns - stream_start_ns) / 1e6;
    metrics.stream_ms->Observe(stream_ms);
    if (deploy != nullptr) deploy->stream_ms->Observe(stream_ms);
    flight.Record(obs::FlightPhase::kStream, order.request_id, /*batch_id=*/0,
                  order.deployment, table.num_rows(), stream_start_ns,
                  stream_end_ns);
  }
  const double latency_ms =
      static_cast<double>(obs::TraceNowNs() - start_ns) / 1e6;
  metrics.latency_ms->Observe(latency_ms);
  if (deploy != nullptr) deploy->latency_ms->Observe(latency_ms);
  if (result.ok()) metrics.rows->Add(request.rows);

  // SLO filing: everything past validation counts. Backpressure sheds are
  // kRejected (they consume error budget but are not server faults);
  // batch failures and sink failures are kError.
  obs::SloOutcome outcome = obs::SloOutcome::kOk;
  if (!result.ok()) {
    outcome = result.status().code() == StatusCode::kUnavailable
                  ? obs::SloOutcome::kRejected
                  : obs::SloOutcome::kError;
  } else if (!stream_status.ok()) {
    outcome = obs::SloOutcome::kError;
  }
  if (outcome == obs::SloOutcome::kError) metrics.errors->Increment();
  if (slo_ != nullptr) slo_->Record(latency_ms, outcome);

  if (!stream_status.ok()) return stream_status;
  return result;
}

Result<Table> SynthesisServer::Synthesize(const ServeRequest& request) {
  return SynthesizeInternal(request, /*sink=*/nullptr);
}

Status SynthesisServer::SynthesizeStream(const ServeRequest& request,
                                         const RowChunkSink& sink) {
  Result<Table> result = SynthesizeInternal(request, &sink);
  if (!result.ok()) return result.status();
  return Status::OK();
}

}  // namespace serve
}  // namespace silofuse

// Tests of the SiloFuse facade: Algorithm 1/2 mechanics, communication
// accounting, partitioned-vs-shared synthesis, and input validation.

#include "core/silofuse.h"

#include <gtest/gtest.h>

#include "data/generators/paper_datasets.h"

namespace silofuse {
namespace {

SiloFuseOptions TinyOptions(int clients = 3) {
  SiloFuseOptions options;
  options.base.autoencoder.hidden_dim = 32;
  options.base.autoencoder_steps = 80;
  options.base.diffusion_train_steps = 150;
  options.base.batch_size = 64;
  options.base.diffusion.hidden_dim = 48;
  options.base.diffusion.num_layers = 4;
  options.partition.num_clients = clients;
  return options;
}

Table SmallData(int rows = 260) {
  return GeneratePaperDataset("loan", rows, /*seed=*/21).Value();
}

TEST(SiloFuseTest, FitCreatesClientsAndCoordinator) {
  SiloFuse model(TinyOptions(3));
  Rng rng(1);
  ASSERT_TRUE(model.Fit(SmallData(), &rng).ok());
  EXPECT_EQ(model.num_clients(), 3);
  ASSERT_NE(model.coordinator(), nullptr);
  EXPECT_TRUE(model.coordinator()->trained());
  // loan has 13 columns; latent dims default to per-client column counts.
  EXPECT_EQ(model.total_latent_dim(), 13);
  EXPECT_EQ(model.client(0)->latent_dim(), 4);
  EXPECT_EQ(model.client(2)->latent_dim(), 5);  // remainder client
}

TEST(SiloFuseTest, TrainingUsesExactlyOneCommunicationRound) {
  SiloFuse model(TinyOptions(4));
  Rng rng(2);
  ASSERT_TRUE(model.Fit(SmallData(), &rng).ok());
  // One round, one latent message per client, nothing else.
  EXPECT_EQ(model.channel().rounds(), 1);
  EXPECT_EQ(model.channel().message_count(), 4);
  EXPECT_EQ(model.channel().total_bytes(),
            model.channel().bytes_with_tag("training_latents"));
}

TEST(SiloFuseTest, TrainingBytesIndependentOfIterations) {
  // The headline Fig. 10 property: more training iterations, same bytes.
  Table data = SmallData();
  SiloFuseOptions small = TinyOptions(2);
  SiloFuseOptions big = TinyOptions(2);
  big.base.autoencoder_steps *= 3;
  big.base.diffusion_train_steps *= 3;
  Rng rng1(3), rng2(3);
  SiloFuse a(small), b(big);
  ASSERT_TRUE(a.Fit(data, &rng1).ok());
  ASSERT_TRUE(b.Fit(data, &rng2).ok());
  EXPECT_EQ(a.channel().bytes_with_tag("training_latents"),
            b.channel().bytes_with_tag("training_latents"));
}

TEST(SiloFuseTest, SynthesizedSchemaMatchesOriginalOrder) {
  SiloFuse model(TinyOptions(3));
  Rng rng(4);
  Table data = SmallData();
  ASSERT_TRUE(model.Fit(data, &rng).ok());
  auto synth = model.Synthesize(50, &rng);
  ASSERT_TRUE(synth.ok());
  EXPECT_TRUE(synth.Value().schema() == data.schema());
  EXPECT_EQ(synth.Value().num_rows(), 50);
}

TEST(SiloFuseTest, PermutedPartitionStillRestoresSchema) {
  SiloFuseOptions options = TinyOptions(4);
  options.partition.permute = true;
  options.partition.permute_seed = 12343;
  SiloFuse model(options);
  Rng rng(5);
  Table data = SmallData();
  ASSERT_TRUE(model.Fit(data, &rng).ok());
  auto synth = model.Synthesize(40, &rng);
  ASSERT_TRUE(synth.ok());
  EXPECT_TRUE(synth.Value().schema() == data.schema());
}

TEST(SiloFuseTest, PartitionedSynthesisKeepsSlicesOnClients) {
  SiloFuse model(TinyOptions(3));
  Rng rng(6);
  ASSERT_TRUE(model.Fit(SmallData(), &rng).ok());
  auto parts = model.SynthesizePartitioned(30, &rng);
  ASSERT_TRUE(parts.ok());
  for (int i = 0; i < model.num_clients(); ++i) {
    EXPECT_TRUE(parts.Value()[i].schema() == model.client(i)->schema());
  }
  // Synthesis round ships per-client latent slices only.
  EXPECT_GT(model.channel().bytes_with_tag("synthetic_latents"), 0);
}

TEST(SiloFuseTest, FitPartitionedRejectsMisalignedRows) {
  SiloFuse model(TinyOptions(2));
  Rng rng(7);
  Table data = SmallData();
  std::vector<Table> parts = {data.SelectColumns({0, 1}),
                              data.SelectColumns({2}).SliceRows(0, 10)};
  Status s = model.FitPartitioned(std::move(parts), {{0, 1}, {2}}, &rng);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("row-aligned"), std::string::npos);
}

TEST(SiloFuseTest, FitPartitionedRejectsSizeMismatch) {
  SiloFuse model(TinyOptions(2));
  Rng rng(8);
  Table data = SmallData();
  std::vector<Table> parts = {data.SelectColumns({0, 1})};
  EXPECT_FALSE(model.FitPartitioned(std::move(parts), {{0, 1}, {2}}, &rng).ok());
}

TEST(SiloFuseTest, FitPartitionedAcceptsExternallyPartitionedData) {
  // The cross-silo entry point: parties arrive with pre-split features.
  SiloFuse model(TinyOptions(2));
  Rng rng(9);
  Table data = SmallData();
  std::vector<std::vector<int>> partition = {{0, 2, 4}, {1, 3, 5, 6, 7, 8, 9,
                                              10, 11, 12}};
  std::vector<Table> parts = {data.SelectColumns(partition[0]),
                              data.SelectColumns(partition[1])};
  ASSERT_TRUE(model.FitPartitioned(std::move(parts), partition, &rng).ok());
  auto synth = model.Synthesize(25, &rng);
  ASSERT_TRUE(synth.ok());
  EXPECT_TRUE(synth.Value().schema() == data.schema());
}

TEST(SiloFuseTest, SynthesizeBeforeFitFails) {
  SiloFuse model(TinyOptions());
  Rng rng(10);
  EXPECT_EQ(model.Synthesize(10, &rng).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(model.SynthesizePartitioned(10, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SiloFuseTest, InvalidRowCountRejected) {
  SiloFuse model(TinyOptions(2));
  Rng rng(11);
  ASSERT_TRUE(model.Fit(SmallData(), &rng).ok());
  EXPECT_FALSE(model.Synthesize(0, &rng).ok());
  EXPECT_FALSE(model.Synthesize(-5, &rng).ok());
}

TEST(SiloFuseTest, ClientHiddenDimScalesDownWithClients) {
  SiloFuseOptions options = TinyOptions(4);
  options.base.autoencoder.hidden_dim = 64;
  options.min_client_hidden = 8;
  SiloFuse model(options);
  Rng rng(12);
  ASSERT_TRUE(model.Fit(SmallData(), &rng).ok());
  // 64 / 4 = 16 hidden units per client: parameter count reflects it.
  const int64_t params = model.client(0)->autoencoder()->parameter_count();
  EXPECT_LT(params, 6000);
}

// --- Per-call sampling schedule (SamplingParams) ----------------------------

// Regression guard for the serving-layer API: adding the params overloads
// must not move a single byte of the existing default synthesis path.
TEST(SiloFuseSamplingParamsTest, DefaultParamsByteIdenticalToLegacyCall) {
  SiloFuse model(TinyOptions(2));
  Rng rng(13);
  ASSERT_TRUE(model.Fit(SmallData(), &rng).ok());

  Rng legacy_rng(30), params_rng(30), explicit_rng(30);
  Table legacy = model.Synthesize(25, &legacy_rng).Value();
  Table with_default = model.Synthesize(25, &params_rng, SamplingParams{}).Value();
  // Spelling the configured schedule out explicitly is also identical.
  SamplingParams configured;
  configured.steps = model.options().base.inference_steps;
  configured.eta = model.options().base.sampling_eta;
  Table with_explicit = model.Synthesize(25, &explicit_rng, configured).Value();
  for (int r = 0; r < legacy.num_rows(); ++r) {
    for (int c = 0; c < legacy.num_columns(); ++c) {
      EXPECT_EQ(legacy.value(r, c), with_default.value(r, c));
      EXPECT_EQ(legacy.value(r, c), with_explicit.value(r, c));
    }
  }

  Rng legacy_p(31), params_p(31);
  auto parts_legacy = model.SynthesizePartitioned(20, &legacy_p).Value();
  auto parts_default =
      model.SynthesizePartitioned(20, &params_p, SamplingParams{}).Value();
  ASSERT_EQ(parts_legacy.size(), parts_default.size());
  for (size_t i = 0; i < parts_legacy.size(); ++i) {
    for (int r = 0; r < parts_legacy[i].num_rows(); ++r) {
      for (int c = 0; c < parts_legacy[i].num_columns(); ++c) {
        EXPECT_EQ(parts_legacy[i].value(r, c), parts_default[i].value(r, c));
      }
    }
  }
}

TEST(SiloFuseSamplingParamsTest, FewStepDdimOverrideProducesValidOutput) {
  SiloFuse model(TinyOptions(2));
  Rng rng(14);
  Table data = SmallData();
  ASSERT_TRUE(model.Fit(data, &rng).ok());

  SamplingParams ddim;
  ddim.steps = 5;
  ddim.eta = 0.0;
  Rng a(40);
  auto synth = model.Synthesize(30, &a, ddim);
  ASSERT_TRUE(synth.ok()) << synth.status().ToString();
  EXPECT_EQ(synth.Value().num_rows(), 30);
  EXPECT_TRUE(synth.Value().schema() == data.schema());

  // Deterministic DDIM (eta = 0): the schedule is a pure function of the
  // initial noise, so re-running with the same seed reproduces the bytes.
  Rng b(40);
  Table again = model.Synthesize(30, &b, ddim).Value();
  for (int r = 0; r < 30; ++r) {
    for (int c = 0; c < data.num_columns(); ++c) {
      EXPECT_EQ(synth.Value().value(r, c), again.value(r, c));
    }
  }
}

}  // namespace
}  // namespace silofuse

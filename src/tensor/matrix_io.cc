#include "tensor/matrix_io.h"

#include <vector>

namespace silofuse {

void SaveMatrix(BinaryWriter* writer, const Matrix& matrix) {
  writer->WriteI32(matrix.rows());
  writer->WriteI32(matrix.cols());
  std::vector<float> values(matrix.data(), matrix.data() + matrix.size());
  writer->WriteFloatVector(values);
}

Result<Matrix> LoadMatrix(BinaryReader* reader) {
  SF_ASSIGN_OR_RETURN(int32_t rows, reader->ReadI32());
  SF_ASSIGN_OR_RETURN(int32_t cols, reader->ReadI32());
  if (rows < 0 || cols < 0) {
    return Status::IOError("corrupt matrix shape in archive");
  }
  SF_ASSIGN_OR_RETURN(std::vector<float> values, reader->ReadFloatVector());
  if (values.size() != static_cast<size_t>(rows) * cols) {
    return Status::IOError("matrix payload size mismatch in archive");
  }
  return Matrix::FromVector(rows, cols, std::move(values));
}

}  // namespace silofuse

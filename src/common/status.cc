#include "common/status.h"

namespace silofuse {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace silofuse

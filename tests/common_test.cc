#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace silofuse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad column");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_NE(Status::Unavailable("x").ToString().find("Unavailable"),
            std::string::npos);
  EXPECT_NE(Status::DeadlineExceeded("x").ToString().find("Deadline"),
            std::string::npos);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SF_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = []() -> Result<int> { return 5; };
  auto failer = []() -> Result<int> { return Status::Internal("x"); };
  auto ok_path = [&]() -> Result<int> {
    SF_ASSIGN_OR_RETURN(int v, producer());
    return v + 1;
  };
  auto err_path = [&]() -> Result<int> {
    SF_ASSIGN_OR_RETURN(int v, failer());
    return v + 1;
  };
  EXPECT_EQ(ok_path().Value(), 6);
  EXPECT_FALSE(err_path().ok());
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
    EXPECT_DOUBLE_EQ(a.Normal(), b.Normal());
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(2);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Categorical(weights), 1);
}

TEST(RngTest, CategoricalFrequencies) {
  Rng rng(3);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) count1 += rng.Categorical(weights);
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.04);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(4);
  std::vector<int> perm = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  std::vector<int> sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(6);
  Rng child = a.Fork();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(child.Uniform(), a.Uniform());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, ToLowerAscii) { EXPECT_EQ(ToLower("AbC1"), "abc1"); }

TEST(StringUtilTest, FormatDoubleDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
}

TEST(StringUtilTest, ParseDoubleAcceptsValid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble(" 2.5 ", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(StringUtilTest, ParseDoubleRejectsInvalid) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.2x", &v));
  EXPECT_FALSE(ParseDouble("nan", &v));
  EXPECT_FALSE(ParseDouble("inf", &v));
}

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(prev);
}

TEST(ClockTest, VirtualClockAdvancesInstantlyAndMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowNs(), 0);
  clock.SleepFor(5'000'000);  // 5ms, but no wall time passes
  EXPECT_EQ(clock.NowNs(), 5'000'000);
  const int64_t mark = clock.NowNs();
  clock.SleepFor(1);
  EXPECT_EQ(clock.ElapsedNs(mark), 1);
}

TEST(ClockTest, SystemClockIsMonotonic) {
  SystemClock* clock = SystemClock::Default();
  const int64_t a = clock->NowNs();
  const int64_t b = clock->NowNs();
  EXPECT_GE(b, a);
}

TEST(RetryTest, BackoffIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 55;
  EXPECT_EQ(BackoffDelayMs(policy, 0), 10);
  EXPECT_EQ(BackoffDelayMs(policy, 1), 20);
  EXPECT_EQ(BackoffDelayMs(policy, 2), 40);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 55);  // capped
  EXPECT_EQ(BackoffDelayMs(policy, 9), 55);
}

TEST(RetryTest, RunWithRetrySucceedsAfterTransientFailures) {
  VirtualClock clock;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 10;
  int attempts = 0;
  int retry_callbacks = 0;
  Status s = RunWithRetry(
      policy, &clock,
      [&](int attempt) {
        ++attempts;
        EXPECT_EQ(attempt, attempts);
        return attempts < 3 ? Status::Unavailable("flaky") : Status::OK();
      },
      [&](int, const Status&) { ++retry_callbacks; });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(retry_callbacks, 2);
  EXPECT_EQ(clock.ElapsedNs(), (10 + 20) * 1'000'000);  // two backoffs
}

TEST(RetryTest, RunWithRetryStopsAtMaxAttempts) {
  VirtualClock clock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  int attempts = 0;
  Status s = RunWithRetry(policy, &clock, [&](int) {
    ++attempts;
    return Status::Unavailable("always down");
  });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts, 3);
}

TEST(RetryTest, PermanentErrorsAreNotRetried) {
  VirtualClock clock;
  RetryPolicy policy;
  policy.max_attempts = 5;
  int attempts = 0;
  Status s = RunWithRetry(policy, &clock, [&](int) {
    ++attempts;
    return Status::FailedPrecondition("never going to work");
  });
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(clock.ElapsedNs(), 0);  // no backoff for permanent failures
}

}  // namespace
}  // namespace silofuse

// Communication audit: trains SiloFuse and the end-to-end distributed
// baseline on the same cross-silo data and prints what actually crossed the
// wire, message by message category — the mechanism behind Fig. 10.

#include <iostream>

#include "common/string_util.h"
#include "core/silofuse.h"
#include "data/generators/paper_datasets.h"
#include "distributed/e2e_distributed.h"
#include "metrics/report.h"
#include "obs/metrics.h"

using namespace silofuse;

int main(int argc, char** argv) {
  argc = obs::InitTelemetryFromArgs(argc, argv);
  const std::string dataset = argc > 1 ? argv[1] : "abalone";
  std::cout << "== Communication audit on '" << dataset << "' ==\n";
  Table data = GeneratePaperDataset(dataset, 800, 1).Value();
  Rng rng(51);

  LatentDiffusionConfig base;
  base.autoencoder.hidden_dim = 64;
  base.autoencoder_steps = 150;
  base.diffusion_train_steps = 250;
  base.batch_size = 128;

  // --- SiloFuse: stacked training, one round --------------------------
  SiloFuseOptions options;
  options.base = base;
  options.partition.num_clients = 4;
  SiloFuse silofuse_model(options);
  if (Status s = silofuse_model.Fit(data, &rng); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  (void)silofuse_model.Synthesize(100, &rng);
  std::cout << "\nSiloFuse " << silofuse_model.channel().Summary();

  // --- E2EDistr: per-iteration activation/gradient exchange ------------
  PartitionConfig partition;
  partition.num_clients = 4;
  E2EDistrSynthesizer e2e(base, partition);
  if (Status s = e2e.Fit(data, &rng); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  std::cout << "\nE2EDistr " << e2e.channel().Summary();

  // --- Projection ------------------------------------------------------
  const int64_t silofuse_total =
      silofuse_model.channel().bytes_with_tag("training_latents");
  const int64_t per_round = e2e.bytes_per_training_round();
  TextTable table({"Training iterations", "SiloFuse", "E2EDistr",
                   "E2EDistr / SiloFuse"});
  for (int64_t iters : {static_cast<int64_t>(50'000),
                        static_cast<int64_t>(500'000),
                        static_cast<int64_t>(5'000'000)}) {
    const double e2e_bytes = static_cast<double>(per_round) * iters;
    table.AddRow({std::to_string(iters),
                  FormatDouble(silofuse_total / 1048576.0, 2) + " MB",
                  FormatDouble(e2e_bytes / 1048576.0, 1) + " MB",
                  FormatDouble(e2e_bytes / silofuse_total, 0) + "x"});
  }
  std::cout << "\nProjected training communication (measured per-round "
               "payloads):\n"
            << table.ToString();
  return 0;
}

#ifndef SILOFUSE_METRICS_DISTRIBUTION_REPORT_H_
#define SILOFUSE_METRICS_DISTRIBUTION_REPORT_H_

#include <string>

#include "common/result.h"
#include "data/table.h"

namespace silofuse {

/// Options for the per-column distribution comparison report (the paper's
/// appendix shows these plots; we render them as paired ASCII histograms).
struct DistributionReportOptions {
  int bins = 12;           // numeric histogram bins
  int bar_width = 30;      // characters for a full bar
  int max_categories = 8;  // categoricals: top-K categories shown
  int max_columns = 64;    // safety cap for very wide tables
};

/// Renders, for every column, the real and synthetic empirical
/// distributions side by side with their JS distance — a human-readable
/// version of the paper's appendix figures. Tables must share a schema.
Result<std::string> RenderDistributionReport(
    const Table& real, const Table& synth,
    const DistributionReportOptions& options = {});

}  // namespace silofuse

#endif  // SILOFUSE_METRICS_DISTRIBUTION_REPORT_H_

#ifndef SILOFUSE_DATA_GENERATORS_COPULA_GENERATOR_H_
#define SILOFUSE_DATA_GENERATORS_COPULA_GENERATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace silofuse {

/// Marginal shape applied to a numeric column's latent score.
enum class NumericTransform {
  kIdentity,   // ~ normal
  kExp,        // log-normal-ish, right-skewed
  kCube,       // heavy-tailed symmetric
  kAbs,        // folded normal, non-negative
  kSigmoidal,  // bounded, saturating
};

/// Generation recipe for one column of a synthetic dataset.
struct GenColumn {
  ColumnSpec spec;
  /// Loadings onto the shared latent factors; correlation between two
  /// columns is induced by overlapping loadings (Gaussian copula).
  std::vector<double> loadings;
  /// Idiosyncratic noise standard deviation added to the latent score.
  double noise = 0.5;
  /// Numeric columns: marginal transform. Ignored for categoricals.
  NumericTransform transform = NumericTransform::kIdentity;
  /// Categorical columns: marginal category probabilities (must sum to ~1
  /// and have spec.cardinality entries). The latent score is thresholded at
  /// the normal quantiles of the cumulative probabilities, which yields the
  /// requested marginal while preserving copula correlation.
  std::vector<double> category_probs;
};

/// Full recipe for a synthetic mixed-type dataset with a learnable
/// downstream target.
struct CopulaConfig {
  int latent_factors = 4;
  std::vector<GenColumn> columns;
  /// Index of the target column (regenerated from parents), or -1 for none.
  int target_column = -1;
  /// Feature columns feeding the target rule.
  std::vector<int> target_parents;
  /// Weight per parent; parents at odd positions contribute quadratically
  /// (score^2 - 1) so the task is not linearly separable.
  std::vector<double> target_weights;
  double target_noise = 0.3;
};

/// Samples correlated mixed-type tables from a Gaussian-copula latent factor
/// model. Stands in for the paper's nine benchmark datasets (see DESIGN.md
/// §4): it exercises the same code paths — mixed types, one-hot sparsity,
/// cross-column correlation, learnable target — without the original files.
class CopulaGenerator {
 public:
  explicit CopulaGenerator(CopulaConfig config);

  /// Generates `rows` samples. Deterministic given the Rng state.
  Result<Table> Generate(int rows, Rng* rng) const;

  const CopulaConfig& config() const { return config_; }
  Schema schema() const;

 private:
  CopulaConfig config_;
};

/// Builds a random CopulaConfig with the given column specs: random unit
/// loadings, Dirichlet-ish category marginals, a rotating set of numeric
/// transforms, and a target rule over ~4 parents. Deterministic in `seed`.
CopulaConfig MakeRandomCopulaConfig(const std::vector<ColumnSpec>& columns,
                                    int target_column, uint64_t seed,
                                    int latent_factors = 4);

}  // namespace silofuse

#endif  // SILOFUSE_DATA_GENERATORS_COPULA_GENERATOR_H_

#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace silofuse {
namespace json {

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Value::NumberOr(const std::string& key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string Value::StringOr(const std::string& key,
                            const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

namespace {

constexpr int kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Run() {
    SkipWhitespace();
    Value root;
    SF_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SF_RETURN_NOT_OK(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Value(true);
          return Status::OK();
        }
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Value(false);
          return Status::OK();
        }
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Value();
          return Status::OK();
        }
        return Error("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, int depth) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      SF_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      Value member;
      SF_RETURN_NOT_OK(ParseValue(&member, depth + 1));
      (*out->mutable_object())[std::move(key)] = std::move(member);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value* out, int depth) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      Value element;
      SF_RETURN_NOT_OK(ParseValue(&element, depth + 1));
      out->mutable_array()->push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are passed
          // through as two 3-byte sequences (telemetry never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    *out = Value(value);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Run(); }

Result<Value> ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = Parse(buffer.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace json
}  // namespace silofuse

# Empty dependencies file for silofuse_cli.
# This may be replaced when dependencies are built.

#ifndef SILOFUSE_OBS_METRICS_H_
#define SILOFUSE_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace silofuse {

struct Parameter;  // nn/module.h

namespace obs {

namespace health {
class TrainingMonitor;  // obs/health.h
}  // namespace health

/// Number of cache-line-padded shards behind every counter/histogram.
/// Writers are spread round-robin by thread, so concurrent increments from
/// the runtime pool do not bounce a single cache line; readers sum all
/// shards under no lock (relaxed atomics, merged at snapshot time).
inline constexpr int kMetricShards = 16;

namespace internal_metrics {
/// Stable per-thread shard index in [0, kMetricShards).
int ThreadShard();
}  // namespace internal_metrics

/// Monotonically increasing event count (tasks executed, bytes sent, ...).
/// Add() is wait-free: one relaxed fetch_add on the caller's shard.
/// Negative deltas are permitted for reconciliation (Channel::Reset walks
/// back a resetting channel's contribution so the registry stays equal to
/// the sum of live channel state); ordinary instrumentation must only add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    shards_[internal_metrics::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards. May miss increments racing with the read.
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  void Reset();

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (current loss, queue depth, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; one extra overflow bucket catches
/// v > bounds.back(). Observe() touches only the caller's shard.
class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (size bounds().size() + 1, last = overflow).
  std::vector<int64_t> BucketCounts() const;
  int64_t TotalCount() const;
  double TotalSum() const;
  /// TotalSum / TotalCount, or 0 when empty.
  double Mean() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  struct alignas(64) Shard {
    explicit Shard(size_t num_buckets);
    std::unique_ptr<std::atomic<int64_t>[]> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Point-in-time copy of one histogram, merged across shards.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> bucket_counts;  // bounds.size() + 1 entries
  int64_t count = 0;
  double sum = 0.0;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation within the
  /// bucket containing the target rank. The first bucket interpolates from
  /// 0, and ranks landing in the overflow bucket return the largest bound
  /// (the histogram has no upper edge to interpolate toward). Returns 0
  /// for an empty histogram.
  double Quantile(double q) const;
};

/// Point-in-time copy of the whole registry.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Pretty-printed JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {bounds, counts, count, sum, mean}}}.
  std::string ToJson() const;
};

/// Process-wide named-metric registry. Registration (Get*) takes a mutex
/// once per call site; the returned handles are valid for the process
/// lifetime, so hot paths cache them in a function-local static and then
/// pay only the handle's relaxed atomics.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// Later GetHistogram calls with different bounds keep the first bounds.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric. Handles stay valid (tests only; racing
  /// writers may land increments on either side of the reset).
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Scoped telemetry for one minibatch training loop. Construct before the
/// loop, call Step() once per minibatch with the current (typically EMA)
/// losses; each (key, value) pair lands in gauge "<prefix>.<key>" and
/// counter "<prefix>.steps" advances. Destruction sets
/// "<prefix>.examples_per_sec" from the measured wall time, giving every
/// model's Fit the same per-epoch loss/throughput story for free.
///
/// WatchHealth() attaches the training-health watchdog (obs/health.h):
/// Step() then also feeds the reported losses through NaN/divergence
/// detection and walks the watched parameters every SILOFUSE_HEALTH_EVERY
/// steps, returning kFailedPrecondition when training has gone off the
/// rails — which is why Step() returns Status. Callers that never call
/// WatchHealth always get OK.
class TrainLoopTelemetry {
 public:
  TrainLoopTelemetry(const std::string& prefix, int batch_size);
  ~TrainLoopTelemetry();

  TrainLoopTelemetry(const TrainLoopTelemetry&) = delete;
  TrainLoopTelemetry& operator=(const TrainLoopTelemetry&) = delete;

  /// Registers parameters with the health monitor (created lazily from
  /// SILOFUSE_HEALTH* on first call). May be called once per silo with
  /// that silo's parameter group; `silo_id` >= 0 is named in metrics and
  /// abort messages. Pointers are borrowed and must outlive the loop.
  void WatchHealth(std::vector<Parameter*> params, int silo_id = -1);

  Status Step(std::initializer_list<std::pair<const char*, double>> values);

 private:
  std::string prefix_;
  int batch_size_;
  int64_t steps_ = 0;
  std::chrono::steady_clock::time_point start_;
  Counter* step_counter_;
  std::map<std::string, Gauge*> gauges_;  // lazily resolved per key
  std::unique_ptr<health::TrainingMonitor> monitor_;  // null until watched
};

/// Expands "%p" to the process id in a telemetry export path, so one
/// SILOFUSE_METRICS/SILOFUSE_TRACE value (e.g. "metrics_%p.json") serves a
/// whole parallel test run without the writers clobbering each other.
/// Applied by FlushTelemetry at write time.
std::string ExpandTelemetryPath(const std::string& path);

/// Writes MetricsRegistry::Global().Snapshot() as JSON to `path`.
Status WriteMetricsJson(const std::string& path);

/// Sets (or clears, with "") the path FlushTelemetry / process exit writes
/// the metrics snapshot to. SILOFUSE_METRICS provides the initial value.
void SetMetricsExportPath(const std::string& path);
std::string MetricsExportPath();

/// Scans argv for `--metrics-out=<path>` / `--metrics-out <path>` and
/// `--trace-out=<path>` / `--trace-out <path>`; a metrics path becomes the
/// export path, a trace path enables tracing. Recognized flags (and their
/// values) are removed from argv in place and the new argc is returned, so
/// mains can call this before their own positional/flag handling. Unrelated
/// arguments keep their relative order.
int InitTelemetryFromArgs(int argc, char** argv);

/// Re-reads SILOFUSE_METRICS / SILOFUSE_TRACE and applies them (the normal
/// lazy env initialization runs once; tests that setenv() later call this).
void ReinitTelemetryFromEnv();

/// Writes the metrics snapshot and the trace buffer to their configured
/// paths now. Also runs automatically at process exit once either path is
/// configured. Errors are logged, not fatal.
void FlushTelemetry();

}  // namespace obs
}  // namespace silofuse

#endif  // SILOFUSE_OBS_METRICS_H_

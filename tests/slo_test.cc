// Tests of the rolling-window SLO monitor (src/obs/slo): multi-window
// burn-rate breach entry scripted on a VirtualClock, the min_requests
// floor, one-shot breach callbacks with re-arming after recovery, window
// expiry, and the serve.slo.* gauge publication sf_report reads.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace silofuse {
namespace obs {
namespace {

/// Tight options so tests can walk the windows in a handful of records:
/// 2 s short / 10 s long windows over 1 s buckets, 90% objective (10% error
/// budget), burn threshold 2 => breach needs a bad fraction >= 20% in BOTH
/// windows with at least 4 requests in the long one.
SloOptions TightOptions() {
  SloOptions options;
  options.latency_objective_ms = 100.0;
  options.objective = 0.9;
  options.short_window_ns = 2LL * 1000 * 1000 * 1000;
  options.long_window_ns = 10LL * 1000 * 1000 * 1000;
  options.bucket_ns = 1LL * 1000 * 1000 * 1000;
  options.burn_rate_threshold = 2.0;
  options.min_requests = 4;
  return options;
}

constexpr int64_t kSecond = 1000 * 1000 * 1000;

TEST(SloMonitorTest, HealthyTrafficNeverBreaches) {
  VirtualClock clock;
  SloMonitor monitor(TightOptions(), &clock);
  for (int i = 0; i < 50; ++i) {
    monitor.Record(10.0, SloOutcome::kOk);
    clock.SleepFor(kSecond / 10);
  }
  const SloSnapshot snapshot = monitor.Snapshot();
  EXPECT_FALSE(snapshot.breached);
  EXPECT_EQ(snapshot.breaches, 0);
  EXPECT_EQ(snapshot.total_requests, 50);
  EXPECT_EQ(snapshot.long_window.bad_fraction, 0.0);
}

TEST(SloMonitorTest, MinRequestsFloorSuppressesEarlyFailures) {
  VirtualClock clock;
  SloMonitor monitor(TightOptions(), &clock);
  // Three straight errors = 100% bad, but below min_requests = 4: never
  // breach (one early blip would otherwise page on any window).
  for (int i = 0; i < 3; ++i) monitor.Record(10.0, SloOutcome::kError);
  EXPECT_FALSE(monitor.Snapshot().breached);
  EXPECT_EQ(monitor.Snapshot().breaches, 0);
  // The fourth bad request crosses the floor and trips the alert.
  monitor.Record(10.0, SloOutcome::kError);
  EXPECT_TRUE(monitor.Snapshot().breached);
  EXPECT_EQ(monitor.Snapshot().breaches, 1);
}

TEST(SloMonitorTest, BreachFiresCallbackExactlyOnceAtTheTrippingRecord) {
  VirtualClock clock;
  SloMonitor monitor(TightOptions(), &clock);
  std::vector<std::string> reasons;
  monitor.SetOnBreach(
      [&reasons](const std::string& reason) { reasons.push_back(reason); });

  // 16 good requests spread over 8 s fill the long window well under
  // budget: long-window bad fraction stays 0.
  for (int i = 0; i < 16; ++i) {
    monitor.Record(10.0, SloOutcome::kOk);
    clock.SleepFor(kSecond / 2);
  }
  ASSERT_TRUE(reasons.empty());

  // Now a burst of slow requests (kOk but over the 100 ms objective, so
  // they are SLO-bad). The short window (4 good + k bad) crosses the
  // threshold at the first bad request; the diluted long window
  // (16 good + k bad, burn 10k/(16+k)) holds the alert until k = 4 — the
  // multi-window AND is what keeps one bad instant from paging.
  for (int k = 1; k <= 3; ++k) {
    monitor.Record(500.0, SloOutcome::kOk);
    EXPECT_TRUE(reasons.empty()) << "breached too early, at bad request " << k;
  }
  monitor.Record(500.0, SloOutcome::kOk);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_NE(reasons[0].find("slo breach"), std::string::npos);

  // Staying in breach does NOT re-fire the callback.
  monitor.Record(500.0, SloOutcome::kOk);
  monitor.Record(500.0, SloOutcome::kOk);
  EXPECT_EQ(reasons.size(), 1u);
  const SloSnapshot snapshot = monitor.Snapshot();
  EXPECT_TRUE(snapshot.breached);
  EXPECT_EQ(snapshot.breaches, 1);
}

TEST(SloMonitorTest, RecoveryReArmsTheCallback) {
  VirtualClock clock;
  SloMonitor monitor(TightOptions(), &clock);
  int fires = 0;
  monitor.SetOnBreach([&fires](const std::string&) { ++fires; });

  for (int i = 0; i < 4; ++i) monitor.Record(10.0, SloOutcome::kError);
  EXPECT_EQ(fires, 1);

  // Let the bad burst age out of the long window entirely, then serve good
  // traffic: the monitor must leave breach...
  clock.SleepFor(12 * kSecond);
  for (int i = 0; i < 8; ++i) {
    monitor.Record(10.0, SloOutcome::kOk);
    clock.SleepFor(kSecond / 4);
  }
  EXPECT_FALSE(monitor.Snapshot().breached);
  EXPECT_EQ(fires, 1);

  // ...and a fresh burst is a NEW breach entry: callback fires again.
  for (int i = 0; i < 12; ++i) monitor.Record(10.0, SloOutcome::kRejected);
  EXPECT_TRUE(monitor.Snapshot().breached);
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(monitor.Snapshot().breaches, 2);
}

TEST(SloMonitorTest, WindowsExpireOldBuckets) {
  VirtualClock clock;
  SloMonitor monitor(TightOptions(), &clock);
  for (int i = 0; i < 6; ++i) monitor.Record(10.0, SloOutcome::kOk);
  clock.SleepFor(3 * kSecond);
  monitor.Record(10.0, SloOutcome::kOk);

  SloSnapshot snapshot = monitor.Snapshot();
  // The first 6 fell out of the 2 s short window but still sit in the 10 s
  // long window.
  EXPECT_EQ(snapshot.short_window.total, 1);
  EXPECT_EQ(snapshot.long_window.total, 7);

  clock.SleepFor(11 * kSecond);
  snapshot = monitor.Snapshot();
  EXPECT_EQ(snapshot.long_window.total, 0);
  EXPECT_EQ(snapshot.total_requests, 7);  // lifetime counter never expires
}

TEST(SloMonitorTest, OutcomesAreBucketedByKind) {
  VirtualClock clock;
  SloMonitor monitor(TightOptions(), &clock);
  monitor.Record(10.0, SloOutcome::kOk);        // good
  monitor.Record(500.0, SloOutcome::kOk);       // slow: bad but not an error
  monitor.Record(0.0, SloOutcome::kRejected);
  monitor.Record(0.0, SloOutcome::kError);
  const SloSnapshot snapshot = monitor.Snapshot();
  EXPECT_EQ(snapshot.long_window.total, 4);
  EXPECT_EQ(snapshot.long_window.good, 1);
  EXPECT_EQ(snapshot.long_window.rejected, 1);
  EXPECT_EQ(snapshot.long_window.errors, 1);
  EXPECT_DOUBLE_EQ(snapshot.long_window.bad_fraction, 0.75);
  // burn = bad_fraction / (1 - 0.9)
  EXPECT_NEAR(snapshot.long_window.burn_rate, 7.5, 1e-9);
}

TEST(SloMonitorTest, PublishesGaugesUnderMetricPrefix) {
  VirtualClock clock;
  SloMonitor monitor(TightOptions(), &clock, "slo_test");
  for (int i = 0; i < 4; ++i) monitor.Record(10.0, SloOutcome::kError);

  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("slo_test.breached")->Value(), 1.0);
  EXPECT_EQ(registry.GetGauge("slo_test.breaches")->Value(), 1.0);
  EXPECT_GE(registry.GetGauge("slo_test.burn_short")->Value(), 2.0);
  EXPECT_GE(registry.GetGauge("slo_test.burn_long")->Value(), 2.0);
}

}  // namespace
}  // namespace obs
}  // namespace silofuse

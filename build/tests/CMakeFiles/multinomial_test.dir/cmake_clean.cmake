file(REMOVE_RECURSE
  "CMakeFiles/multinomial_test.dir/multinomial_test.cc.o"
  "CMakeFiles/multinomial_test.dir/multinomial_test.cc.o.d"
  "multinomial_test"
  "multinomial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

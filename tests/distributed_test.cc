#include <gtest/gtest.h>

#include <algorithm>

#include "core/silofuse.h"
#include "data/generators/paper_datasets.h"
#include "distributed/channel.h"
#include "distributed/client.h"
#include "distributed/coordinator.h"
#include "distributed/fault.h"
#include "distributed/partition.h"
#include "obs/metrics.h"

namespace silofuse {
namespace {

TEST(ChannelTest, RecordsBytesMessagesRounds) {
  Channel channel;
  Matrix m(10, 4);
  channel.BeginRound();
  const int64_t bytes = channel.SendMatrix("client_0", "coordinator", m, "latents");
  EXPECT_EQ(bytes, MatrixWireBytes(m));
  channel.Send("coordinator", "client_0", 100, "misc");
  EXPECT_EQ(channel.total_bytes(), bytes + 100);
  EXPECT_EQ(channel.message_count(), 2);
  EXPECT_EQ(channel.rounds(), 1);
  EXPECT_EQ(channel.bytes_with_tag("latents"), bytes);
  EXPECT_EQ(channel.bytes_with_tag("misc"), 100);
  EXPECT_EQ(channel.bytes_with_tag("unknown"), 0);
}

TEST(ChannelTest, MatrixWireBytesScalesWithPayload) {
  Matrix small(1, 1);
  Matrix big(100, 100);
  EXPECT_LT(MatrixWireBytes(small), MatrixWireBytes(big));
  EXPECT_EQ(MatrixWireBytes(big) - MatrixWireBytes(small),
            static_cast<int64_t>((100 * 100 - 1) * sizeof(float)));
}

TEST(ChannelTest, ResetClearsEverything) {
  Channel channel;
  channel.BeginRound();
  channel.Send("a", "b", 10, "x");
  channel.Reset();
  EXPECT_EQ(channel.total_bytes(), 0);
  EXPECT_EQ(channel.message_count(), 0);
  EXPECT_EQ(channel.rounds(), 0);
}

// Regression: Reset() used to zero only the channel's local totals while the
// global obs counters kept the pre-reset traffic, so channel totals and
// "channel.*" metrics drifted apart after the first refit. Reset must walk
// back exactly this channel's contribution — including reliability subtotals
// and per-tag bytes — and leave traffic metered by other channels alone.
TEST(ChannelTest, ResetWalksBackItsOwnObsCounters) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  Channel other;  // concurrent traffic that Reset() must not disturb
  other.Send("x", "y", 64, "latents");

  const int64_t bytes_before = registry.GetCounter("channel.bytes")->Value();
  const int64_t tag_before =
      registry.GetCounter("channel.bytes.latents")->Value();
  const int64_t messages_before =
      registry.GetCounter("channel.messages")->Value();
  const int64_t rounds_before = registry.GetCounter("channel.rounds")->Value();
  const int64_t retries_before =
      registry.GetCounter("channel.retries")->Value();
  const int64_t redelivered_before =
      registry.GetCounter("channel.redelivered_bytes")->Value();

  Channel channel;
  channel.BeginRound();
  channel.Send("a", "b", 10, "latents");
  channel.Send("a", "b", 7, "misc");
  channel.RecordRetry(10);
  channel.Reset();

  EXPECT_EQ(registry.GetCounter("channel.bytes")->Value(), bytes_before);
  EXPECT_EQ(registry.GetCounter("channel.bytes.latents")->Value(), tag_before);
  EXPECT_EQ(registry.GetCounter("channel.messages")->Value(), messages_before);
  EXPECT_EQ(registry.GetCounter("channel.rounds")->Value(), rounds_before);
  EXPECT_EQ(registry.GetCounter("channel.retries")->Value(), retries_before);
  EXPECT_EQ(registry.GetCounter("channel.redelivered_bytes")->Value(),
            redelivered_before);
  // The other channel's traffic survives the reset.
  EXPECT_EQ(other.total_bytes(), 64);
}

TEST(ChannelTest, ResetClearsReliabilitySubtotals) {
  Channel channel;
  channel.BeginRound();
  channel.Send("a", "b", 10, "x");
  channel.RecordRetry(10);
  channel.RecordRedelivered(10);
  EXPECT_EQ(channel.retries(), 1);
  EXPECT_EQ(channel.redelivered_bytes(), 20);
  channel.Reset();
  EXPECT_EQ(channel.retries(), 0);
  EXPECT_EQ(channel.redelivered_bytes(), 0);
}

// K-of-M degraded mode: when a silo dies before the latent upload, the
// surviving clients' schema/partition bookkeeping must stay consistent —
// the compacted partition is a permutation of the surviving columns in their
// original relative order, and the reassembled table's schema is exactly the
// surviving clients' schemas stitched back together.
TEST(DegradedModeTest, SchemaAndPartitionStayConsistentAfterSiloDrop) {
  Table data = GeneratePaperDataset("loan", 150, /*seed=*/31).Value();
  FaultPlan plan(/*seed=*/41);
  plan.DropSiloAtRound("client_1", 1);
  SiloFuseOptions options;
  options.base.autoencoder.hidden_dim = 24;
  options.base.autoencoder_steps = 30;
  options.base.diffusion_train_steps = 50;
  options.base.batch_size = 32;
  options.base.diffusion.hidden_dim = 32;
  options.base.diffusion.num_layers = 3;
  options.partition.num_clients = 3;
  options.fault.plan = &plan;
  options.min_clients = 2;

  // Capture the original 3-way split before fitting mutates bookkeeping.
  const auto full_partition =
      PartitionColumns(data.num_columns(), options.partition).Value();

  SiloFuse model(options);
  Rng rng(7);
  ASSERT_TRUE(model.Fit(data, &rng).ok());
  ASSERT_EQ(model.num_clients(), 2);
  ASSERT_EQ(model.degraded_silos(), std::vector<int>{1});

  // Surviving original columns, in original order: parts 0 and 2.
  std::vector<int> surviving_cols = full_partition[0];
  surviving_cols.insert(surviving_cols.end(), full_partition[2].begin(),
                        full_partition[2].end());
  std::sort(surviving_cols.begin(), surviving_cols.end());

  // The compacted partition must be a permutation of 0..K-1 (so reassembly
  // works) that preserves each part's internal order.
  const auto& compacted = model.partition();
  ASSERT_EQ(compacted.size(), 2u);
  std::vector<int> flat;
  for (const auto& part : compacted) {
    EXPECT_TRUE(std::is_sorted(part.begin(), part.end()));
    flat.insert(flat.end(), part.begin(), part.end());
  }
  std::sort(flat.begin(), flat.end());
  ASSERT_EQ(flat.size(), surviving_cols.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], static_cast<int>(i));
  }

  // Synthesized schema == surviving source columns, original relative order.
  Rng synth_rng(9);
  auto synth = model.Synthesize(20, &synth_rng);
  ASSERT_TRUE(synth.ok()) << synth.status().ToString();
  const Schema& got = synth.Value().schema();
  ASSERT_EQ(got.num_columns(), static_cast<int>(surviving_cols.size()));
  for (size_t i = 0; i < surviving_cols.size(); ++i) {
    EXPECT_EQ(got.column(static_cast<int>(i)).name,
              data.schema().column(surviving_cols[i]).name);
  }
}

TEST(ChannelTest, SummaryMentionsTags) {
  Channel channel;
  channel.Send("a", "b", 10, "latents");
  EXPECT_NE(channel.Summary().find("latents"), std::string::npos);
}

TEST(PartitionTest, EqualSplitWithRemainderToLast) {
  PartitionConfig config;
  config.num_clients = 4;
  auto parts = PartitionColumns(14, config).Value();
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].size(), 3u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 3u);
  EXPECT_EQ(parts[3].size(), 5u);  // remainder
  // Default is contiguous in schema order.
  EXPECT_EQ(parts[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parts[3], (std::vector<int>{9, 10, 11, 12, 13}));
}

TEST(PartitionTest, RejectsTooManyClients) {
  PartitionConfig config;
  config.num_clients = 5;
  EXPECT_FALSE(PartitionColumns(4, config).ok());
  config.num_clients = 0;
  EXPECT_FALSE(PartitionColumns(4, config).ok());
}

TEST(PartitionTest, PermutedIsSeededPermutation) {
  PartitionConfig config;
  config.num_clients = 3;
  config.permute = true;
  config.permute_seed = 12343;
  auto a = PartitionColumns(9, config).Value();
  auto b = PartitionColumns(9, config).Value();
  EXPECT_EQ(a, b);  // deterministic
  // Covers all columns exactly once.
  std::vector<int> flat;
  for (const auto& p : a) flat.insert(flat.end(), p.begin(), p.end());
  std::sort(flat.begin(), flat.end());
  for (int i = 0; i < 9; ++i) EXPECT_EQ(flat[i], i);
  // Differs from the unshuffled order with overwhelming probability.
  config.permute = false;
  auto plain = PartitionColumns(9, config).Value();
  EXPECT_NE(a, plain);
}

// Sweep over client counts and permutation flags: partition must always be
// a cover of the column set with non-empty parts.
class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(PartitionSweep, CoversAllColumnsNonEmpty) {
  PartitionConfig config;
  config.num_clients = std::get<0>(GetParam());
  config.permute = std::get<1>(GetParam());
  const int columns = 24;
  auto parts = PartitionColumns(columns, config).Value();
  ASSERT_EQ(static_cast<int>(parts.size()), config.num_clients);
  std::vector<bool> seen(columns, false);
  for (const auto& p : parts) {
    EXPECT_FALSE(p.empty());
    for (int c : p) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, columns);
      EXPECT_FALSE(seen[c]);
      seen[c] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

INSTANTIATE_TEST_SUITE_P(ClientsByPermutation, PartitionSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Bool()));

TEST(PartitionTest, PartitionTableAndReassembleRoundTrip) {
  Table t(Schema({ColumnSpec::Numeric("a"), ColumnSpec::Numeric("b"),
                  ColumnSpec::Categorical("c", 2),
                  ColumnSpec::Numeric("d")}));
  ASSERT_TRUE(t.AppendRow({1, 2, 0, 4}).ok());
  ASSERT_TRUE(t.AppendRow({5, 6, 1, 8}).ok());
  PartitionConfig config;
  config.num_clients = 2;
  config.permute = true;
  config.permute_seed = 7;
  auto partition = PartitionColumns(t.num_columns(), config).Value();
  auto parts = PartitionTable(t, config).Value();
  auto restored = ReassembleColumns(parts, partition);
  ASSERT_TRUE(restored.ok());
  for (int r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < t.num_columns(); ++c) {
      EXPECT_DOUBLE_EQ(restored.Value().value(r, c), t.value(r, c));
      EXPECT_EQ(restored.Value().schema().column(c).name,
                t.schema().column(c).name);
    }
  }
}

TEST(PartitionTest, ReassembleRejectsBadPartition) {
  Table t(Schema({ColumnSpec::Numeric("a"), ColumnSpec::Numeric("b")}));
  ASSERT_TRUE(t.AppendRow({1, 2}).ok());
  auto parts = std::vector<Table>{t.SelectColumns({0}), t.SelectColumns({1})};
  EXPECT_FALSE(ReassembleColumns(parts, {{0}, {0}}).ok());  // not a permutation
  EXPECT_FALSE(ReassembleColumns(parts, {{0}}).ok());       // size mismatch
}

TEST(SiloClientTest, EncodeDecodeShapes) {
  Rng rng(1);
  Table t(Schema({ColumnSpec::Numeric("x"), ColumnSpec::Categorical("c", 3)}));
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(t.AppendRow({rng.Normal(), static_cast<double>(i % 3)}).ok());
  }
  AutoencoderConfig config;
  config.hidden_dim = 16;
  auto client = SiloClient::Create(2, t, config, &rng).Value();
  EXPECT_EQ(client->id(), 2);
  EXPECT_EQ(client->party_name(), "client_2");
  EXPECT_EQ(client->latent_dim(), 2);  // defaults to column count
  client->TrainAutoencoder(60, 32, &rng);
  Matrix z = client->ComputeLatents();
  EXPECT_EQ(z.rows(), 120);
  EXPECT_EQ(z.cols(), 2);
  Table decoded = client->Decode(z, &rng, /*sample=*/false);
  EXPECT_EQ(decoded.num_rows(), 120);
  EXPECT_TRUE(decoded.schema() == t.schema());
}

TEST(SiloClientTest, RejectsEmptyFeatureSet) {
  Rng rng(2);
  Table empty{Schema{}};
  AutoencoderConfig config;
  EXPECT_FALSE(SiloClient::Create(0, empty, config, &rng).ok());
}

TEST(CoordinatorTest, TrainAndSampleLatents) {
  Rng rng(3);
  GaussianDdpmConfig config;
  config.hidden_dim = 32;
  config.num_layers = 3;
  config.dropout = 0.0f;
  Coordinator coordinator(config);
  EXPECT_FALSE(coordinator.trained());
  EXPECT_FALSE(coordinator.SampleLatents(10, 5, 1.0, &rng).ok());
  Matrix latents = Matrix::RandomNormal(300, 4, &rng, 2.0f, 3.0f);
  ASSERT_TRUE(coordinator.TrainOnLatents(latents, 200, 64, &rng).ok());
  EXPECT_TRUE(coordinator.trained());
  auto samples = coordinator.SampleLatents(500, 15, 1.0, &rng);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples.Value().rows(), 500);
  EXPECT_EQ(samples.Value().cols(), 4);
  // De-standardization restores the training scale.
  EXPECT_NEAR(samples.Value().Mean(), 2.0, 0.8);
}

TEST(CoordinatorTest, RejectsTinyLatentSets) {
  Rng rng(4);
  GaussianDdpmConfig config;
  Coordinator coordinator(config);
  Matrix one_row(1, 3);
  EXPECT_FALSE(coordinator.TrainOnLatents(one_row, 10, 8, &rng).ok());
}

}  // namespace
}  // namespace silofuse

// Table VI: privacy scores of the top three models when synthetic features
// are shared post-generation — the mean of the singling-out, linkability
// and attribute-inference attack scores. Expected shape: SiloFuse's scores
// are the highest on most datasets (its decoders never see the global
// latent distribution, so cross-feature links are weaker).

#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"
#include "metrics/report.h"
#include "obs/metrics.h"
#include "privacy/attacks.h"

using namespace silofuse;

int main(int argc, char** argv) {
  obs::InitTelemetryFromArgs(argc, argv);
  const bench::BenchProfile profile = bench::MakeProfile(bench::Scale());
  const int trials = bench::Trials();
  std::cout << "== Table VI: privacy scores (scale=" << profile.scale
            << ", trials=" << trials << ") ==\n\n";

  const std::vector<std::string> models = {"TabDDPM", "LatentDiff", "SiloFuse"};
  const auto& datasets = PaperDatasetNames();
  std::vector<std::string> header = {"Model"};
  header.insert(header.end(), datasets.begin(), datasets.end());
  TextTable table(header);

  PrivacyConfig privacy_config;
  privacy_config.num_attacks = 400;

  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    for (const std::string& dataset : datasets) {
      std::vector<double> trial_scores;
      for (int trial = 0; trial < trials; ++trial) {
        auto split = bench::MakeRealSplit(dataset, trial, profile);
        if (!split.ok()) {
          std::cerr << split.status().ToString() << "\n";
          return 1;
        }
        auto synth = bench::GetOrSynthesize(model, dataset, trial, profile,
                                            split.Value().train);
        if (!synth.ok()) {
          std::cerr << model << "/" << dataset << ": "
                    << synth.status().ToString() << "\n";
          return 1;
        }
        Rng rng(3000 + trial);
        auto privacy = ComputePrivacy(split.Value().train, synth.Value(),
                                      privacy_config, &rng);
        if (!privacy.ok()) {
          std::cerr << privacy.status().ToString() << "\n";
          return 1;
        }
        trial_scores.push_back(privacy.Value().overall);
        std::cerr << "[" << model << "/" << dataset << " trial " << trial
                  << "] privacy "
                  << FormatDouble(privacy.Value().overall, 1) << " (S "
                  << FormatDouble(privacy.Value().singling_out.score, 1)
                  << ", L "
                  << FormatDouble(privacy.Value().linkability.score, 1)
                  << ", A "
                  << FormatDouble(privacy.Value().attribute_inference.score, 1)
                  << ")\n";
      }
      row.push_back(bench::FormatMeanStd(bench::Summarize(trial_scores)));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString();
  return 0;
}

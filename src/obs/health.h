#ifndef SILOFUSE_OBS_HEALTH_H_
#define SILOFUSE_OBS_HEALTH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"
#include "nn/module.h"

namespace silofuse {
namespace obs {
namespace health {

/// Knobs for the training-health collector + watchdog. Defaults come from
/// the environment on every FromEnv() call (no caching), so tests can
/// setenv() and construct a fresh monitor:
///   SILOFUSE_HEALTH=0        disables collection and the watchdog entirely
///   SILOFUSE_HEALTH_EVERY=K  per-layer stats walk cadence (default 25)
struct HealthOptions {
  bool enabled = true;
  int stats_every = 25;

  /// Divergence trips when the loss EMA exceeds the best (lowest) EMA seen
  /// by more than ratio * (|best| + offset). The additive offset keeps the
  /// threshold meaningful for losses that hover near zero or go negative
  /// (Gaussian NLL), and the generous default ratio tolerates GAN
  /// oscillation without false positives.
  double divergence_ratio = 4.0;
  double divergence_offset = 1.0;

  /// Steps before divergence can trip (the best-EMA floor is tracked from
  /// step one, so a run that explodes during warmup still aborts at the
  /// first post-warmup check).
  int warmup_steps = 50;

  /// EMA smoothing: ema = alpha * loss + (1 - alpha) * ema.
  double ema_alpha = 0.05;

  static HealthOptions FromEnv();
};

/// One parameter tensor's health snapshot.
struct LayerStat {
  std::string name;
  double grad_norm = 0.0;
  double value_norm = 0.0;
  float grad_min = 0.0f;
  float grad_max = 0.0f;
  float value_min = 0.0f;
  float value_max = 0.0f;
  int64_t grad_nonfinite = 0;
  int64_t value_nonfinite = 0;
};

/// Walks `params` in order and computes per-parameter statistics with a
/// single serial pass per tensor. Deterministic at any thread count: the
/// accumulation order depends only on the parameter list.
std::vector<LayerStat> CollectLayerStats(const std::vector<Parameter*>& params);

/// Per-trainer statistics collector + divergence/NaN watchdog.
///
/// Watch() registers parameter groups (one per silo for distributed
/// trainers); OnStep() is then called once per optimizer step with the
/// current losses. Every step the losses are checked for NaN/Inf and fed
/// into per-key EMAs; every `stats_every` steps (and immediately when a
/// loss goes non-finite) the watched parameters are walked and per-layer
/// grad/value norms, min/max, and non-finite counts land in
/// `health.<prefix>[.silo<k>].layer.<param>.*` gauges,
/// `health.<prefix>.{grad,value}_norms` histograms, and Chrome-trace
/// counter tracks. A non-finite loss/gradient or a tripped divergence
/// threshold returns Status::kFailedPrecondition naming the first
/// offending layer, the step, and the silo; healthy steps return OK.
class TrainingMonitor {
 public:
  explicit TrainingMonitor(std::string prefix,
                           HealthOptions options = HealthOptions::FromEnv());

  TrainingMonitor(const TrainingMonitor&) = delete;
  TrainingMonitor& operator=(const TrainingMonitor&) = delete;

  /// Registers a parameter group. `silo_id` >= 0 scopes the group's metric
  /// names with ".silo<k>" and is named in abort messages. Pointers are
  /// borrowed and must outlive the monitor.
  void Watch(std::vector<Parameter*> params, int silo_id = -1);

  /// Health check for one optimizer step (1-based). `losses` are the same
  /// key/value pairs the caller reports to TrainLoopTelemetry::Step.
  Status OnStep(int64_t step,
                const std::vector<std::pair<std::string, double>>& losses);

  bool enabled() const { return options_.enabled; }
  const HealthOptions& options() const { return options_; }

 private:
  struct WatchedGroup {
    std::vector<Parameter*> params;
    int silo_id = -1;
    std::string gauge_prefix;  // "health.<prefix>" or "health.<prefix>.silo<k>"
  };
  struct LossTrack {
    double ema = 0.0;
    double best_ema = 0.0;
    int64_t count = 0;
  };

  /// Publishes stats for all groups; reports the first parameter holding a
  /// non-finite gradient or value, plus the largest-gradient layer.
  struct Offender {
    const WatchedGroup* group = nullptr;
    LayerStat stat;
    bool found = false;
    std::string worst_layer;  // largest grad-norm layer across all groups
    std::string worst_silo_suffix;
    double worst_grad_norm = -1.0;
  };
  Offender PublishLayerStats(int64_t step);
  void SetGauge(const std::string& name, double value);
  void MarkAborted(int64_t step);
  std::string SiloSuffix(const WatchedGroup& group) const;

  std::string prefix_;
  HealthOptions options_;
  std::vector<WatchedGroup> groups_;
  std::map<std::string, LossTrack> losses_;
};

/// Mid-training quality probe configuration: every `every_steps` optimizer
/// steps, synthesize `rows` rows with `synthesize` and score them against
/// `reference` with ComputeResemblanceQuick, emitting a `<prefix>.*` metric
/// time-series. The probe draws from its own fixed-seed Rng (derived from
/// `seed` + probe index), never the training Rng, so enabling probes does
/// not perturb the training trajectory.
struct QualityProbe {
  int every_steps = 0;  // <= 0 disables
  int rows = 64;
  uint64_t seed = 0x517f;
  const Table* reference = nullptr;  // borrowed; must outlive training
  std::function<Result<Table>(int rows, Rng* rng)> synthesize;
  std::string prefix = "quality";
};

/// Stateful runner for one training loop's probe schedule. Gauges:
/// `<prefix>.{column_similarity,jensen_shannon,kolmogorov_smirnov,overall,
/// step}` hold the latest probe; `<prefix>.series.<k>.{overall,step}` keep
/// the full trajectory; counter `<prefix>.probes` counts runs. Probe
/// failures (too few rows, schema drift) are returned, not swallowed.
class QualityProbeRunner {
 public:
  explicit QualityProbeRunner(QualityProbe probe);

  /// Runs the probe when `step` is a positive multiple of `every_steps`.
  Status MaybeRun(int64_t step);

  bool enabled() const;
  int probes_run() const { return runs_; }

 private:
  QualityProbe probe_;
  int runs_ = 0;
};

}  // namespace health
}  // namespace obs
}  // namespace silofuse

#endif  // SILOFUSE_OBS_HEALTH_H_

#ifndef SILOFUSE_DISTRIBUTED_CHANNEL_H_
#define SILOFUSE_DISTRIBUTED_CHANNEL_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace silofuse {

class Clock;

namespace obs {
class Counter;
}  // namespace obs

/// One recorded transfer between parties.
struct ChannelMessage {
  std::string from;
  std::string to;
  std::string tag;
  int64_t bytes = 0;
  /// Ambient obs::TraceContext at send time, TraceContext::Pack form
  /// (0 = no context was installed). Lets post-hoc analysis attribute
  /// every wire message to its run/round/silo without a trace export.
  uint64_t trace_ctx = 0;
};

/// Byte/message subtotal of one communication round, so the Fig. 10
/// pipeline can plot bytes-per-round instead of only cumulative totals.
struct ChannelRound {
  int64_t bytes = 0;
  int64_t messages = 0;
  /// Re-delivery attempts performed by the reliability layer in this round
  /// (0 on a fault-free wire).
  int64_t retries = 0;
  /// Bytes that crossed the wire more than once (retransmissions and
  /// duplicate deliveries) in this round.
  int64_t redelivered_bytes = 0;
  /// Wall time from this round's BeginRound to the next one (or to the
  /// stats read for the still-open last round).
  double wall_ms = 0.0;
};

/// Serialized size of a float32 matrix payload plus a small fixed header
/// (shape + ids), matching what a real wire format would ship.
int64_t MatrixWireBytes(const Matrix& m);

/// In-process stand-in for the cross-silo network. Every transfer between a
/// client and the coordinator is recorded so the communication experiments
/// (Fig. 10) can compare stacked vs end-to-end training byte-for-byte.
///
/// Recording is thread-safe: concurrent clients may Send while another
/// thread reads totals or snapshots rounds. Transfers also feed the global
/// obs::MetricsRegistry ("channel.bytes", "channel.bytes.<tag>",
/// "channel.messages", "channel.rounds") so exported metrics snapshots
/// carry per-tag communication without touching the Channel object.
class Channel {
 public:
  Channel() = default;

  /// Routes round wall-time measurement through `clock` (nullptr restores
  /// the real monotonic clock). With a VirtualClock, RoundLog wall_ms
  /// becomes fully deterministic in tests.
  void SetClock(Clock* clock);

  /// Records a matrix transfer and returns its byte size.
  int64_t SendMatrix(const std::string& from, const std::string& to,
                     const Matrix& payload, const std::string& tag);

  /// Records an arbitrary payload.
  void Send(const std::string& from, const std::string& to, int64_t bytes,
            const std::string& tag);

  /// Marks the start of a communication round (a synchronized exchange
  /// between all clients and the coordinator). Closes the wall-time of the
  /// previous round.
  void BeginRound();

  /// Records one retry performed by the reliability layer (fault.h):
  /// `redelivered_bytes` retransmitted bytes land in the open round's
  /// subtotal and the global "channel.retries" / "channel.redelivered_bytes"
  /// counters.
  void RecordRetry(int64_t redelivered_bytes);

  /// Records bytes that were delivered more than once without a retry
  /// (duplicate injection).
  void RecordRedelivered(int64_t bytes);

  int64_t total_bytes() const;
  int64_t message_count() const;
  int64_t rounds() const;
  int64_t retries() const;
  int64_t redelivered_bytes() const;
  int64_t bytes_with_tag(const std::string& tag) const;

  /// Copy of the full message log (snapshot under the channel lock).
  std::vector<ChannelMessage> MessageLog() const;

  /// Per-round subtotals, index 0 = first BeginRound. Messages sent before
  /// the first BeginRound appear only in the cumulative totals.
  std::vector<ChannelRound> RoundLog() const;

  /// Clears the message/round logs AND walks back this channel's own
  /// contributions to the global obs counters ("channel.bytes",
  /// "channel.bytes.<tag>", "channel.messages", "channel.rounds",
  /// "channel.retries", "channel.redelivered_bytes"), so registry snapshots
  /// stay equal to the sum of live channel state. Fault-layer counters
  /// ("channel.dropped", "channel.corrupt_detected", "channel.duplicates",
  /// "channel.timeouts") are owned by fault.h and deliberately keep their
  /// process-lifetime totals.
  void Reset();

  /// Multi-line human-readable summary (per-tag byte totals). The format of
  /// the existing lines is stable; downstream parsers keep working.
  std::string Summary() const;

 private:
  /// Registry counter for `tag`, cached so steady-state Send() does not
  /// re-lock the registry. Requires mu_.
  obs::Counter* TagCounterLocked(const std::string& tag);

  /// Round-timing time source; never nullptr after construction. Requires
  /// mu_ for writes; reads happen under mu_ too (cheap, not a hot path).
  int64_t RoundNowNsLocked() const;

  mutable std::mutex mu_;
  Clock* clock_ = nullptr;  // nullptr = real monotonic clock
  std::vector<ChannelMessage> log_;
  std::map<std::string, int64_t> bytes_by_tag_;
  std::map<std::string, obs::Counter*> tag_counters_;
  std::vector<ChannelRound> round_log_;
  int64_t round_start_ns_ = 0;
  int64_t total_bytes_ = 0;
  int64_t rounds_ = 0;
  int64_t retries_ = 0;
  int64_t redelivered_bytes_ = 0;
};

}  // namespace silofuse

#endif  // SILOFUSE_DISTRIBUTED_CHANNEL_H_

#ifndef SILOFUSE_MODELS_AUTOENCODER_H_
#define SILOFUSE_MODELS_AUTOENCODER_H_

#include <memory>
#include <vector>

#include "common/archive.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/mixed_encoder.h"
#include "data/table.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "tensor/matrix.h"

namespace silofuse {

/// Hyperparameters for a client autoencoder (E_i, D_i).
struct AutoencoderConfig {
  /// Hidden width of the 3-layer MLPs (paper: 1024 centralized, split across
  /// clients; scaled for CPU).
  int hidden_dim = 128;
  /// Latent width s_i; 0 means "number of original columns", the paper's
  /// setting ("latent dimension is set to the number of original features
  /// before one-hot encoding").
  int latent_dim = 0;
  int num_layers = 3;
  float lr = 1e-3f;
  float grad_clip = 5.0f;
  float dropout = 0.0f;
};

/// Client-side tabular autoencoder: a GELU MLP encoder producing continuous
/// latents and a decoder with per-feature distribution heads — Gaussian
/// (mean, logvar) for numeric columns, multinomial logits for categorical
/// columns — trained with negative log-likelihood (Eq. 4).
class TabularAutoencoder {
 public:
  /// Fits preprocessing on `data` and initializes the networks.
  static Result<std::unique_ptr<TabularAutoencoder>> Create(
      const Table& data, const AutoencoderConfig& config, Rng* rng);

  /// One minibatch NLL update on pre-encoded inputs; returns the loss.
  double TrainStep(const Matrix& x_encoded);

  /// Convenience: trains for `steps` minibatches on `data` under the
  /// training-health watchdog; returns the final running loss, or
  /// kFailedPrecondition if the watchdog aborts (NaN loss/gradients or EMA
  /// divergence). `silo_id` >= 0 scopes health metrics and abort messages
  /// to the owning silo.
  Result<double> Train(const Table& data, int steps, int batch_size, Rng* rng,
                       int silo_id = -1);

  /// Encodes a table into latents Z_i = E_i(X_i).
  Matrix EncodeTable(const Table& table) const;

  /// Decodes latents back into a table (X~_i = D_i(Z~_i)). When `sample` is
  /// true, categorical codes are drawn from the head's softmax and numeric
  /// values from the Gaussian head; otherwise argmax/mean are used.
  Table DecodeToTable(const Matrix& latents, Rng* rng, bool sample = true);

  /// --- Low-level interface used by the end-to-end baselines -------------

  /// Encoder forward (training mode toggles dropout); input must be the
  /// MixedEncoder encoding of this client's features.
  Matrix EncoderForward(const Matrix& x_encoded, bool training);
  /// Backprop through the encoder; returns dLoss/dInput.
  Matrix EncoderBackward(const Matrix& grad_latent);
  /// Decoder forward up to the raw head outputs.
  Matrix DecoderForward(const Matrix& latents, bool training);
  /// Backprop through the decoder; returns dLoss/dLatent.
  Matrix DecoderBackward(const Matrix& grad_heads);
  /// NLL of head outputs against encoded targets; fills dLoss/dHeads.
  double HeadLoss(const Matrix& head_outputs, const Matrix& x_target_encoded,
                  Matrix* grad_heads) const;

  const MixedEncoder& mixed_encoder() const { return mixed_encoder_; }
  const Schema& schema() const { return mixed_encoder_.schema(); }
  int latent_dim() const { return latent_dim_; }
  int head_width() const { return head_width_; }
  Optimizer* optimizer() { return optimizer_.get(); }
  std::vector<Parameter*> Parameters();
  int64_t parameter_count();

  /// Checkpoint support: Save serializes the config, fitted preprocessing
  /// and all weights; LoadFrom reconstructs a ready-to-use autoencoder with
  /// no training data (decode-only deployment after Algorithm 2).
  void Save(BinaryWriter* writer);
  static Result<std::unique_ptr<TabularAutoencoder>> LoadFrom(
      BinaryReader* reader);

  /// Serialized byte size of a latent matrix with `rows` rows — what a
  /// client ships to the coordinator (float32 payload).
  int64_t LatentBytes(int64_t rows) const {
    return rows * latent_dim_ * static_cast<int64_t>(sizeof(float));
  }

 private:
  TabularAutoencoder() = default;

  /// Builds head_spans_/head_width_ from the fitted schema.
  void BuildHeadLayout();
  /// Builds encoder_/decoder_/optimizer_ (requires layout + latent_dim_).
  void BuildNetworks(Rng* rng);

  /// Assembles a MixedEncoder-layout feature matrix from raw head outputs
  /// (numeric mean [+ sampled noise], categorical logits).
  Matrix HeadsToEncodedLayout(const Matrix& head_outputs, Rng* rng,
                              bool sample) const;

  AutoencoderConfig config_;
  MixedEncoder mixed_encoder_;
  int latent_dim_ = 0;
  int head_width_ = 0;
  /// Head layout: per original column, offset into the decoder output.
  struct HeadSpan {
    int column = 0;
    int offset = 0;
    int width = 0;  // 2 for numeric (mean, logvar), K for categorical
    bool categorical = false;
  };
  std::vector<HeadSpan> head_spans_;
  Sequential encoder_;
  Sequential decoder_;
  std::unique_ptr<Adam> optimizer_;
};

}  // namespace silofuse

#endif  // SILOFUSE_MODELS_AUTOENCODER_H_

#ifndef SILOFUSE_DATA_SPLIT_H_
#define SILOFUSE_DATA_SPLIT_H_

#include "common/rng.h"
#include "data/table.h"

namespace silofuse {

/// A shuffled train/test partition of a table's rows.
struct TrainTestSplit {
  Table train;
  Table test;
};

/// Splits `table` into train/test with `test_fraction` of rows (rounded,
/// at least 1 when possible) held out, after shuffling with `rng`.
TrainTestSplit SplitTrainTest(const Table& table, double test_fraction,
                              Rng* rng);

/// Draws `batch_size` random row indices (with replacement) — the minibatch
/// sampler shared by all trainers.
std::vector<int> SampleBatchIndices(int num_rows, int batch_size, Rng* rng);

}  // namespace silofuse

#endif  // SILOFUSE_DATA_SPLIT_H_

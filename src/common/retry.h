#ifndef SILOFUSE_COMMON_RETRY_H_
#define SILOFUSE_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace silofuse {

/// Bounded-retry + exponential-backoff contract shared by every reliable
/// transfer in the cross-silo layer.
///
/// Attempt k (1-based) runs immediately for k == 1; before attempt k > 1 the
/// caller sleeps BackoffDelayMs(policy, k - 2) milliseconds. The schedule is
/// deliberately jitter-free so fault-injection tests can assert the exact
/// virtual-clock timeline; real deployments would add jitter here.
struct RetryPolicy {
  /// Total delivery attempts (first try included). Must be >= 1.
  int max_attempts = 4;
  /// Backoff before the first retry.
  int64_t initial_backoff_ms = 10;
  /// Multiplier applied per further retry (initial, initial*m, initial*m^2,
  /// ... capped at max_backoff_ms).
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 2000;
  /// Per-attempt delivery deadline; an attempt whose (injected) latency
  /// exceeds this fails with kDeadlineExceeded and is retried. 0 disables.
  int64_t attempt_timeout_ms = 5000;
};

/// Backoff before retry `retry_index` (0-based: the delay between the
/// original attempt and the first retry has index 0). Deterministic;
/// monotonically non-decreasing; capped at policy.max_backoff_ms.
int64_t BackoffDelayMs(const RetryPolicy& policy, int retry_index);

/// Runs `attempt(k)` (k = 1-based attempt number) until it returns OK or the
/// policy's attempt budget is exhausted, sleeping the backoff schedule on
/// `clock` between attempts. `on_retry(k, status)`, when given, fires before
/// the sleep preceding attempt k. Returns OK on success, otherwise the last
/// attempt's Status. kFailedPrecondition and kInvalidArgument are treated as
/// permanent and returned without further retries.
Status RunWithRetry(const RetryPolicy& policy, Clock* clock,
                    const std::function<Status(int)>& attempt,
                    const std::function<void(int, const Status&)>& on_retry =
                        nullptr);

}  // namespace silofuse

#endif  // SILOFUSE_COMMON_RETRY_H_

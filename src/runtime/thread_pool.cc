#include "runtime/thread_pool.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace silofuse {
namespace {

thread_local bool tls_in_worker = false;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Microsecond latency buckets shared by the queue-wait and task-duration
// histograms: 10us .. 1s, roughly half-decade spacing.
const std::vector<double>& LatencyBucketsUs() {
  static const std::vector<double>* buckets = new std::vector<double>{
      10, 50, 100, 500, 1'000, 5'000, 10'000, 50'000, 100'000, 1'000'000};
  return *buckets;
}

struct PoolMetrics {
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::Histogram* queue_wait_us;
  obs::Histogram* task_us;
};

// One-time registration; handles are process-lifetime so the hot path pays
// only relaxed atomics (see DESIGN.md §8 overhead contract).
const PoolMetrics& Metrics() {
  static const PoolMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    PoolMetrics m;
    m.tasks = registry.GetCounter("runtime.pool.tasks");
    m.queue_depth = registry.GetGauge("runtime.pool.queue_depth");
    m.queue_wait_us =
        registry.GetHistogram("runtime.pool.queue_wait_us", LatencyBucketsUs());
    m.task_us =
        registry.GetHistogram("runtime.pool.task_us", LatencyBucketsUs());
    return m;
  }();
  return metrics;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  SF_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SF_CHECK(task != nullptr);
  const int64_t now_ns = NowNs();
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Submitting while the destructor drains is legal from worker tasks:
    // the submitting worker is still in its loop, so the queue is drained
    // before the pool joins. Only non-worker submits require the pool to
    // be outside its destructor (a plain lifetime rule).
    SF_CHECK(!stop_ || InWorker()) << "Submit on a stopped ThreadPool";
    queue_.push_back(
        {std::move(task), now_ns, obs::CurrentTraceContext().Pack()});
    depth = queue_.size();
  }
  Metrics().queue_depth->Set(static_cast<double>(depth));
  cv_.notify_one();
}

bool ThreadPool::InWorker() { return tls_in_worker; }

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  const PoolMetrics& metrics = Metrics();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping, so ~ThreadPool never
      // abandons submitted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const int64_t start_ns = NowNs();
    metrics.queue_wait_us->Observe(
        static_cast<double>(start_ns - task.enqueue_ns) / 1e3);
    {
      // Re-install the submitter's trace context so spans recorded inside
      // the task attribute to the run/round/silo that enqueued it.
      obs::ScopedTraceContext ctx(obs::TraceContext::Unpack(task.trace_ctx));
      SF_TRACE_SPAN("pool.task");
      task.fn();
    }
    metrics.task_us->Observe(static_cast<double>(NowNs() - start_ns) / 1e3);
    metrics.tasks->Increment();
  }
}

}  // namespace silofuse

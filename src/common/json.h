#ifndef SILOFUSE_COMMON_JSON_H_
#define SILOFUSE_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace silofuse {
namespace json {

/// Minimal JSON document model for the analysis tools (sf_report,
/// bench_compare): they must read back the telemetry the library itself
/// writes (metrics snapshots, Chrome traces, BENCH_*.json) without an
/// external JSON dependency. Full RFC 8259 input is accepted; numbers are
/// held as double (telemetry values are counts and milliseconds, well inside
/// the 2^53 exact-integer range).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Value Array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::map<std::string, Value>& AsObject() const { return object_; }

  std::vector<Value>* mutable_array() { return &array_; }
  std::map<std::string, Value>* mutable_object() { return &object_; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Convenience typed lookups with fallbacks, for tolerant readers.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one JSON document. Trailing non-whitespace, unterminated strings,
/// malformed escapes, and deeply nested input (>256 levels) are errors.
Result<Value> Parse(const std::string& text);

/// Reads and parses `path`; the error message names the file.
Result<Value> ParseFile(const std::string& path);

}  // namespace json
}  // namespace silofuse

#endif  // SILOFUSE_COMMON_JSON_H_

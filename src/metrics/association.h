#ifndef SILOFUSE_METRICS_ASSOCIATION_H_
#define SILOFUSE_METRICS_ASSOCIATION_H_

#include <vector>

#include "data/table.h"
#include "tensor/matrix.h"

namespace silofuse {

/// Pearson correlation coefficient of two equal-length series (0 when either
/// is degenerate).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Theil's U — the uncertainty coefficient U(x|y) in [0, 1]: how much of
/// H(X) is explained by knowing Y. Codes must lie in [0, card).
double TheilsU(const std::vector<int>& x, const std::vector<int>& y,
               int card_x, int card_y);

/// Correlation ratio (eta) between a categorical grouping and a numeric
/// variable, in [0, 1].
double CorrelationRatio(const std::vector<int>& categories,
                        const std::vector<double>& values, int cardinality);

/// Shannon entropy of a code series (natural log).
double Entropy(const std::vector<int>& codes, int cardinality);

/// Pairwise association matrix of a table (the per-dataset "feature
/// correlation" graph of Table V): Pearson for numeric-numeric, Theil's U
/// for categorical-categorical, correlation ratio for mixed pairs, 1 on the
/// diagonal.
Matrix PairwiseAssociations(const Table& table);

/// Mean absolute difference of the two tables' association matrices —
/// the scalar summarized by the paper's correlation-difference heatmaps.
/// Tables must share a schema.
double AssociationDifference(const Table& real, const Table& synth);

/// ---- Per-column distribution distances -----------------------------------

/// Two-sample Kolmogorov-Smirnov statistic in [0, 1].
double KsStatistic(const std::vector<double>& a, const std::vector<double>& b);

/// Total variation distance between categorical distributions in [0, 1].
double TotalVariation(const std::vector<int>& a, const std::vector<int>& b,
                      int cardinality);

/// Jensen-Shannon distance (sqrt of JS divergence, log base 2 so it lies in
/// [0, 1]) between the empirical distributions. Numeric inputs are
/// discretized into `bins` equal-width bins over the combined range.
double JensenShannonDistanceNumeric(const std::vector<double>& a,
                                    const std::vector<double>& b,
                                    int bins = 20);
double JensenShannonDistanceCategorical(const std::vector<int>& a,
                                        const std::vector<int>& b,
                                        int cardinality);

/// Q-Q correlation: Pearson correlation of the two samples' matched
/// quantiles — the numeric "column similarity" of the resemblance score.
double QuantileCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b, int quantiles = 100);

/// Extracts a categorical column as int codes.
std::vector<int> ColumnCodes(const Table& table, int column);

}  // namespace silofuse

#endif  // SILOFUSE_METRICS_ASSOCIATION_H_

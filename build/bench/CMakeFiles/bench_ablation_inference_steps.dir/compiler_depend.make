# Empty compiler generated dependencies file for bench_ablation_inference_steps.
# This may be replaced when dependencies are built.
